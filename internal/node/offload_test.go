package node

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/minos-ddp/minos/internal/ddp"
	"github.com/minos-ddp/minos/internal/obs"
	"github.com/minos-ddp/minos/internal/offload"
	"github.com/minos-ddp/minos/internal/transport"
)

// offloadTestConfig is an aggressive engine tuning for tests: every key
// qualifies on first touch, and manual epochs (no ticker) keep the
// threshold trajectory deterministic.
func offloadTestConfig() *offload.Config {
	return &offload.Config{
		InitialThreshold:      1,
		MinThreshold:          1,
		MaxPromotionsPerEpoch: 1 << 20,
		Epoch:                 -1,
	}
}

// TestOffloadableGate pins which messages may cross to the NIC pool:
// key-carrying protocol messages yes; scope-control broadcasts, scope
// flush requests, and coalesced VAL batches no.
func TestOffloadableGate(t *testing.T) {
	ts := ddp.Timestamp{Node: 1, Version: 3}
	cases := []struct {
		m    ddp.Message
		want bool
	}{
		{ddp.Message{Kind: ddp.KindInv, TS: ts}, true},
		{ddp.Message{Kind: ddp.KindAck, TS: ts}, true},
		{ddp.Message{Kind: ddp.KindAckC, TS: ts}, true},
		{ddp.Message{Kind: ddp.KindVal, TS: ts}, true},
		{ddp.Message{Kind: ddp.KindValC, TS: ts}, true},
		{ddp.Message{Kind: ddp.KindAckP, TS: ts, Scope: 5}, true},
		{ddp.Message{Kind: ddp.KindValP, TS: ts, Scope: 5}, true},
		{ddp.Message{Kind: ddp.KindAckP, Scope: 5}, false}, // [ACK_P]sc scope control
		{ddp.Message{Kind: ddp.KindValP, Scope: 5}, false}, // [VAL_P]sc scope control
		{ddp.Message{Kind: ddp.KindPersist, Scope: 5}, false},
		{ddp.Message{Kind: ddp.KindValBatch}, false},
	}
	for i, c := range cases {
		if got := offloadable(c.m); got != c.want {
			t.Errorf("case %d: offloadable(%v scope=%d ts=%v) = %v, want %v",
				i, c.m.Kind, c.m.Scope, c.m.TS, got, c.want)
		}
	}
}

// TestOffloadClusterReplicates smoke-tests every model with the engine
// enabled: a hot key's writes converge on all nodes, and the NIC pool
// actually carried protocol traffic for it.
func TestOffloadClusterReplicates(t *testing.T) {
	for _, model := range ddp.Models {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			nodes, _ := newCluster(t, 3, model, func(cfg *Config) {
				cfg.Offload = offloadTestConfig()
			})
			var want []byte
			for i := 0; i < 20; i++ {
				want = []byte(fmt.Sprintf("off-%d", i))
				if err := nodes[0].Write(5, want); err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
			}
			waitConverged(t, nodes, 5, want)
			var nic int64
			for _, nd := range nodes {
				if nd.Offload() == nil {
					t.Fatal("offload engine missing")
				}
				nic += nd.Offload().NICFrames()
			}
			if nic == 0 {
				t.Fatal("no protocol message rode the NIC pool")
			}
		})
	}
}

// TestOffloadClusterLinearizable is TestLiveClusterIsLinearizable with
// the soft-NIC engine splicing the delivery path: same concurrent
// unique-valued writes and reads on one (hot, hence offloaded) key,
// same requirement that a legal linearization exists — MINOS-O must be
// observationally equivalent to MINOS-B.
func TestOffloadClusterLinearizable(t *testing.T) {
	for _, model := range ddp.Models {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			for round := 0; round < 3; round++ {
				nodes, _ := newCluster(t, 3, model, func(cfg *Config) {
					cfg.Offload = offloadTestConfig()
				})
				var mu sync.Mutex
				var hist []histOp
				record := func(op histOp) {
					mu.Lock()
					hist = append(hist, op)
					mu.Unlock()
				}
				var wg sync.WaitGroup
				for _, nd := range nodes {
					nd := nd
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < 2; i++ {
							v := fmt.Sprintf("o%d-%d-%d", nd.ID(), round, i)
							start := time.Now()
							if err := nd.Write(1, []byte(v)); err != nil {
								t.Errorf("write: %v", err)
								return
							}
							record(histOp{isWrite: true, value: v, start: start, end: time.Now()})
						}
					}()
				}
				for _, nd := range nodes {
					nd := nd
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < 3; i++ {
							start := time.Now()
							v, err := nd.Read(1)
							if err != nil {
								t.Errorf("read: %v", err)
								return
							}
							record(histOp{isWrite: false, value: string(v), start: start, end: time.Now()})
							time.Sleep(time.Duration(i) * 200 * time.Microsecond)
						}
					}()
				}
				wg.Wait()
				if !linearizable(hist) {
					t.Fatalf("round %d: no legal linearization of %d ops with offload on",
						round, len(hist))
				}
			}
		})
	}
}

// TestOffloadRTCLinearizable runs the offloaded cluster over the ring
// fabric in run-to-completion mode (inline delivery, no host-lane
// fence): linearizability must survive the borrowed-frame admission
// path too.
func TestOffloadRTCLinearizable(t *testing.T) {
	for _, model := range []ddp.Model{ddp.LinSynch, ddp.LinStrict} {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			net := transport.NewRingNetwork(3)
			nodes := make([]*Node, 3)
			for i := range nodes {
				nodes[i] = NewWithOptions(net.Endpoint(ddp.NodeID(i)),
					WithModel(model), WithRTC(RTCEnabled),
					WithOffload(offloadTestConfig()))
				nodes[i].Start()
			}
			t.Cleanup(func() {
				for _, nd := range nodes {
					nd.Close()
				}
			})
			var mu sync.Mutex
			var hist []histOp
			record := func(op histOp) {
				mu.Lock()
				hist = append(hist, op)
				mu.Unlock()
			}
			var wg sync.WaitGroup
			for _, nd := range nodes {
				nd := nd
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 3; i++ {
						v := fmt.Sprintf("rtc%d-%d", nd.ID(), i)
						start := time.Now()
						if err := nd.Write(2, []byte(v)); err != nil {
							t.Errorf("write: %v", err)
							return
						}
						record(histOp{isWrite: true, value: v, start: start, end: time.Now()})
						vr, err := nd.Read(2)
						if err != nil {
							t.Errorf("read: %v", err)
							return
						}
						record(histOp{isWrite: false, value: string(vr), start: start, end: time.Now()})
					}
				}()
			}
			wg.Wait()
			if !linearizable(hist) {
				t.Fatalf("no legal linearization of %d ops with offload + RTC", len(hist))
			}
		})
	}
}

// TestOffloadTracePhases: with tracing on, NIC-handled messages record
// the nic_queue and nic_handle phases, and every matched pair abuts
// (the queue span ends where the handling span starts) — the Fig 2
// B-vs-O breakdown minos-trace renders.
func TestOffloadTracePhases(t *testing.T) {
	net := transport.NewMemNetwork(3)
	nodes := make([]*Node, 3)
	tracers := make([]*obs.Tracer, 3)
	for i := range nodes {
		tracers[i] = obs.NewTracer(1 << 16)
		tracers[i].SetSampleEvery(1)
		nodes[i] = NewWithOptions(net.Endpoint(ddp.NodeID(i)),
			WithModel(ddp.LinSynch), WithTracer(tracers[i]),
			WithOffload(offloadTestConfig()))
		nodes[i].Start()
	}
	for i := 0; i < 30; i++ {
		if err := nodes[0].Write(1, []byte(fmt.Sprintf("tr-%d", i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for _, nd := range nodes {
		nd.Close()
	}
	type pkey struct {
		node int
		key  uint64
		ver  int64
	}
	queues := map[pkey]obs.Span{}
	handles := map[pkey]obs.Span{}
	for i, tr := range tracers {
		for _, s := range tr.Spans() {
			k := pkey{i, s.Key, s.Ver}
			switch s.Phase {
			case obs.PhaseNICQueue:
				queues[k] = s
			case obs.PhaseNICHandle:
				handles[k] = s
			}
		}
	}
	if len(handles) == 0 {
		t.Fatal("no nic_handle span recorded: the NIC pool never handled a traced message")
	}
	matched := 0
	for k, h := range handles {
		q, ok := queues[k]
		if !ok {
			t.Fatalf("nic_handle for %+v has no nic_queue span", k)
		}
		if q.End > h.Start {
			t.Fatalf("%+v: nic_queue ends at %d after nic_handle starts at %d", k, q.End, h.Start)
		}
		if q.Start > q.End {
			t.Fatalf("%+v: nic_queue span runs backwards (%d > %d)", k, q.Start, q.End)
		}
		matched++
	}
	t.Logf("matched %d nic_queue/nic_handle pairs", matched)
}

// TestOffloadOverflowDemotesEndToEnd drives a follower with a one-deep
// vFIFO through the full promote → overflow → demote → host cycle over
// a raw endpoint, with strictly ascending same-key INVs. The
// acknowledgments must come back in timestamp order across every
// ownership transfer — no INV dropped, none reordered, none spuriously
// obsolete — which is the per-record-FIFO half of the D13 equivalence
// argument exercised end to end.
func TestOffloadOverflowDemotesEndToEnd(t *testing.T) {
	net := transport.NewMemNetwork(2)
	client := net.Endpoint(0) // raw: we play the coordinator by hand
	oc := &offload.Config{
		Cores: 1, VFIFODepth: 1, Slots: 16,
		InitialThreshold: 1, MinThreshold: 1,
		MaxPromotionsPerEpoch: 1 << 20,
		Epoch:                 -1,
	}
	n := NewWithOptions(net.Endpoint(1), WithModel(ddp.LinSynch), WithOffload(oc))
	n.Start()
	defer n.Close()

	const key = ddp.Key(7)
	const perRound = 300
	total := 0
	deadline := time.After(30 * time.Second)
	// The depth-1 vFIFO overflows as soon as delivery outpaces the
	// single NIC core; a handful of rounds is far more than enough.
	for round := 0; round < 5; round++ {
		for i := 1; i <= perRound; i++ {
			v := total + i
			m := ddp.Message{
				Kind: ddp.KindInv, Key: key,
				TS:    ddp.Timestamp{Node: 0, Version: ddp.Version(v)},
				Value: []byte{byte(v)},
				Size:  ddp.DataSize(1),
			}
			if err := client.Send(1, transport.Frame{Kind: transport.FrameMessage, Msg: m}); err != nil {
				t.Fatalf("send INV v%d: %v", v, err)
			}
		}
		got := 0
		for got < perRound {
			select {
			case f, ok := <-client.Recv():
				if !ok {
					t.Fatal("client endpoint closed early")
				}
				if f.Kind != transport.FrameMessage || f.Msg.Kind != ddp.KindAck {
					continue
				}
				got++
				if want := ddp.Version(total + got); f.Msg.TS.Version != want {
					t.Fatalf("ack %d carries version %d, want %d: the offload boundary reordered INVs",
						total+got, f.Msg.TS.Version, want)
				}
			case <-deadline:
				t.Fatalf("timed out with %d/%d acks in round %d", got, perRound, round)
			}
		}
		total += perRound
		if n.Offload().Demotions() > 0 {
			break
		}
	}
	if n.Offload().Demotions() == 0 {
		t.Fatalf("no vFIFO-overflow demotion in %d same-key INVs through a depth-1 vFIFO", total)
	}
	if n.Offload().Promotions() == 0 {
		t.Fatal("key never promoted")
	}

	// In-order application means no INV went obsolete: every write
	// persisted exactly once and the record sits at the final version.
	if l := n.Log().Len(); l != total {
		t.Fatalf("log has %d entries, want %d", l, total)
	}
	r := n.Store().Get(key)
	if r == nil {
		t.Fatal("record missing")
	}
	r.Lock()
	ts := r.Meta.VolatileTS
	r.Unlock()
	if int(ts.Version) != total {
		t.Fatalf("volatile TS version %d, want %d", ts.Version, total)
	}
	if invs := n.Stats.InvsHandled.Load(); int(invs) != total {
		t.Fatalf("handled %d INVs, want %d", invs, total)
	}
}
