package node

import (
	"github.com/minos-ddp/minos/internal/ddp"
	"github.com/minos-ddp/minos/internal/obs"
	"github.com/minos-ddp/minos/internal/transport"
)

// clientReq is one admitted client operation queued for a frontend
// worker. The value is owned by the request (copied at admission when
// the frame borrowed transport storage).
type clientReq struct {
	from   ddp.NodeID
	client uint64
	op     transport.ClientOp
	key    ddp.Key
	value  []byte
}

// frontend is the node's remote-client admission stage: a bounded queue
// plus a small worker pool that executes client operations through the
// same Write/ReadInto/Persist paths local callers use.
//
// The critical property is that admission is non-blocking. In
// run-to-completion mode client frames arrive on the goroutine holding
// the transport's poll token; a client operation executed inline there
// would deadlock the moment it needed to poll for its own
// acknowledgments. So handleFrame only ever enqueues; when the queue is
// full the request is shed with an explicit StatusShed response — never
// silently dropped, never silently retried — which is exactly the
// back-pressure signal the open-loop load harness accounts for.
type frontend struct {
	n *Node
	q chan clientReq

	served *obs.Counter
	shed   *obs.Counter
	errs   *obs.Counter
	depth  *obs.Gauge
}

// newFrontend builds the frontend; workers start in Start.
func newFrontend(n *Node, window int) *frontend {
	return &frontend{
		n:      n,
		q:      make(chan clientReq, window),
		served: n.obs.Counter("client_served"),
		shed:   n.obs.Counter("client_shed"),
		errs:   n.obs.Counter("client_errs"),
		depth:  n.obs.Gauge("client_queue_depth_max"),
	}
}

// start launches the worker pool on the node's WaitGroup.
func (fe *frontend) start(workers int) {
	for w := 0; w < workers; w++ {
		fe.n.wg.Add(1)
		go fe.worker()
	}
}

// admit handles an inbound FrameClientRequest: enqueue if the window
// has room, shed otherwise. It runs on the node's single delivery
// goroutine (recvLoop, or the poll-token holder in RTC mode) and must
// not block or execute the operation.
func (fe *frontend) admit(f transport.Frame) {
	req := clientReq{
		from:   f.From,
		client: f.Client,
		op:     f.Req.Op,
		key:    f.Req.Key,
		value:  f.Req.Value,
	}
	if fe.n.inline && len(req.value) > 0 {
		// Inline delivery borrows transport storage for the frame's
		// value; it dies when the handler returns, and the request
		// outlives it in the queue.
		req.value = append([]byte(nil), req.value...)
	}
	select {
	case fe.q <- req:
		fe.depth.Max(int64(len(fe.q)))
	default:
		fe.shed.Add(1)
		fe.respond(req.from, req.client, transport.ClientResponse{Op: req.op, Status: transport.StatusShed})
	}
}

// respond ships a client response; best-effort like every protocol
// send (a vanished client is its own problem).
func (fe *frontend) respond(to ddp.NodeID, client uint64, resp transport.ClientResponse) {
	_ = fe.n.tr.Send(to, transport.Frame{
		Kind:   transport.FrameClientResponse,
		Client: client,
		Resp:   resp,
	})
}

// worker drains admitted requests until the node closes. Operations
// blocked mid-protocol (ack waits, persist drains) unwind with
// ErrClosed via the node's Close wake machinery, so shutdown never
// hangs on an in-flight client op.
func (fe *frontend) worker() {
	defer fe.n.wg.Done()
	n := fe.n
	// Per-worker scope for <Lin, Scope>: remote clients cannot allocate
	// cluster-unique scope IDs themselves, so the worker owns one and
	// OpClientPersist flushes it — the same shape as a local scoped
	// client loop.
	var scope ddp.ScopeID
	if n.policy.Scoped {
		scope = n.NewScope()
	}
	var readBuf []byte
	for {
		select {
		case <-n.stop:
			return
		case req := <-fe.q:
			resp := transport.ClientResponse{Op: req.op, Status: transport.StatusOK}
			switch req.op {
			case transport.OpClientRead:
				v, err := n.ReadInto(req.key, readBuf)
				if err != nil {
					resp.Status = transport.StatusErr
				} else if n.syncSend {
					// Synchronous encoders finish with the bytes before
					// Send returns; the worker's buffer can be aliased
					// and recycled.
					readBuf = v[:0]
					resp.Value = v
				} else {
					resp.Value = append([]byte(nil), v...)
				}
			case transport.OpClientWrite:
				if err := n.WriteScoped(req.key, req.value, scope); err != nil {
					resp.Status = transport.StatusErr
				}
			case transport.OpClientPersist:
				if err := n.Persist(scope); err != nil {
					resp.Status = transport.StatusErr
				} else if n.policy.Scoped {
					scope = n.NewScope()
				}
			default:
				resp.Status = transport.StatusErr
			}
			if resp.Status == transport.StatusErr {
				fe.errs.Add(1)
			} else {
				fe.served.Add(1)
			}
			fe.respond(req.from, req.client, resp)
		}
	}
}
