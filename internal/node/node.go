// Package node implements a live MINOS-B node: the leaderless DDP
// coordinator and follower algorithms of Fig 2 (with the Fig 3 per-model
// deltas) running on real goroutines over a Transport, with the failure
// detection and log-shipping recovery extensions of §III-E.
//
// This is the executable counterpart of the simulated cluster: both
// consume the protocol semantics in internal/ddp, so the model checker's
// and simulator's correctness arguments carry over.
package node

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/minos-ddp/minos/internal/ddp"
	"github.com/minos-ddp/minos/internal/kv"
	"github.com/minos-ddp/minos/internal/nvm"
	"github.com/minos-ddp/minos/internal/obs"
	"github.com/minos-ddp/minos/internal/offload"
	"github.com/minos-ddp/minos/internal/transport"
)

// ErrClosed is returned by operations on a closed node.
var ErrClosed = errors.New("node: closed")

// Config tunes a live node.
type Config struct {
	// Model is the <consistency, persistency> model to run.
	Model ddp.Model
	// PersistDelay emulates the NVM write latency charged before a
	// persist is considered durable (the paper emulates 1295ns/KB).
	// The delay is charged once per drained group commit, not once per
	// entry — the dFIFO batching of §V-B.4. Zero persists instantly.
	PersistDelay time.Duration
	// HeartbeatEvery and FailAfter drive the failure detector: a peer
	// silent for FailAfter is declared failed and writes stop waiting
	// for it. Zero values disable detection (the pure protocol).
	HeartbeatEvery time.Duration
	FailAfter      time.Duration
	// Shards sizes the KV store's lock striping.
	Shards int
	// DispatchWorkers sizes the key-affine executor that replaces
	// goroutine-per-message dispatch. Rounded up to a power of two;
	// default 8.
	DispatchWorkers int
	// PersistDrains is the number of NVM drain engines (persist queues)
	// feeding the log. Rounded up to a power of two; default 4.
	PersistDrains int
	// Tracer, when non-nil, records per-transaction phase spans on the
	// write path (obs.Phase taxonomy). Nil disables tracing; the hot
	// path then pays a single predictable branch per phase boundary.
	Tracer *obs.Tracer
	// RTC selects the run-to-completion coordinator mode: protocol
	// messages are handled inline on the transport's polling goroutine
	// (no executor hand-off), and a coordinator blocked on
	// acknowledgments drives the receive path itself via inline polling
	// instead of parking. Requires a transport implementing
	// transport.InlinePoller; RTCAuto enables it whenever the transport
	// supports it.
	RTC RTCMode
	// ClientWindow, when positive, enables the remote-client frontend:
	// FrameClientRequest frames are admitted into a bounded queue of
	// this depth and executed by a worker pool; requests arriving with
	// the queue full are shed with an explicit StatusShed response.
	// Zero disables the frontend (client frames are answered StatusErr).
	ClientWindow int
	// ClientWorkers sizes the frontend's worker pool; default 8. Only
	// meaningful with ClientWindow > 0.
	ClientWorkers int
	// Offload, when non-nil, enables the soft-NIC offload engine
	// (MINOS-O): protocol messages for keys the adaptive policy deems
	// hot are handled on the engine's core pool instead of the host
	// dispatch path. The config's callback fields (Handler, Durable,
	// HostFence, HostDrained, Now) are owned by the node and overwritten;
	// set only the tuning knobs. &offload.Config{} selects all defaults.
	Offload *offload.Config
}

// RTCMode controls the run-to-completion dispatch mode.
type RTCMode int

const (
	// RTCAuto (the default) runs to completion when the transport
	// supports inline polling, and falls back to the executor-lane
	// dispatch otherwise.
	RTCAuto RTCMode = iota
	// RTCEnabled requires inline dispatch (still falls back if the
	// transport cannot poll inline).
	RTCEnabled
	// RTCDisabled always uses the parked executor-lane dispatch, even
	// over transports that could poll inline.
	RTCDisabled
)

// txnKey identifies a write transaction; TS_WR is unique per record only.
type txnKey struct {
	key ddp.Key
	ts  ddp.Timestamp
}

// writeTxn is the coordinator-side state of one in-flight client-write.
// ackCn/ackPn mirror the acknowledgment counts atomically so the
// run-to-completion fast path can spin on them without taking mu; the
// authoritative per-follower state stays in txn under mu.
type writeTxn struct {
	mu        sync.Mutex
	cond      *sync.Cond
	txn       *ddp.WriteTxn
	followers []ddp.NodeID
	ackCn     atomic.Int32
	ackPn     atomic.Int32
	// valCSent deduplicates the consistency-point VAL_C broadcast
	// between the writer and the offload engine's broadcast FSM
	// (handleAckOffloaded): whichever observes the quorum first wins
	// the CAS and fans out; the other skips.
	valCSent atomic.Bool
}

// wtPool recycles writeTxn state (including the WriteTxn ack maps, via
// Reset) across writes. Safe because removePending holds the stripe
// lock, the only place concurrent handlers obtain wt references.
var wtPool = sync.Pool{New: func() any {
	wt := &writeTxn{txn: &ddp.WriteTxn{}}
	wt.cond = sync.NewCond(&wt.mu)
	return wt
}}

// getWriteTxn checks bookkeeping for one write out of the pool.
//
//minos:hotpath
func (n *Node) getWriteTxn(key ddp.Key, ts ddp.Timestamp, followers []ddp.NodeID) *writeTxn {
	wt := wtPool.Get().(*writeTxn)
	// followers comes from an immutable liveness snapshot; aliasing it
	// is safe and keeps the write fast path allocation-free.
	wt.followers = followers
	wt.txn.Reset(n.policy, n.id, key, ts, len(followers))
	wt.ackCn.Store(0)
	wt.ackPn.Store(0)
	wt.valCSent.Store(false)
	return wt
}

// scopeEntry is a deferred persist under <Lin, Scope>.
type scopeEntry struct {
	key   ddp.Key
	ts    ddp.Timestamp
	value []byte
}

// scopePersist tracks one [PERSIST]sc at its coordinator.
type scopePersist struct {
	mu        sync.Mutex
	cond      *sync.Cond
	followers []ddp.NodeID
	got       map[ddp.NodeID]bool
}

// txnStripeCount stripes the coordinator's transaction table (pending
// writes and issued versions); power of two for mask indexing.
const txnStripeCount = 64

// txnStripe is one stripe of the coordinator's transaction table.
// (Issued-version tracking lives on kv.Record.Issued, under the record
// lock the write path already holds.)
type txnStripe struct {
	mu      sync.Mutex
	pending map[txnKey]*writeTxn
}

// liveView is an immutable snapshot of the failure detector's world.
// It is published atomically so the protocol hot paths — the isAlive
// checks inside the acknowledgment spins and the follower snapshot at
// write start — read liveness without taking any lock.
type liveView struct {
	epoch uint64
	alive map[ddp.NodeID]bool // immutable after publish
	live  []ddp.NodeID        // alive peers, ascending; immutable
}

// Node is one live MINOS-B replica.
type Node struct {
	cfg    Config
	policy ddp.Policy
	id     ddp.NodeID
	tr     transport.Transport

	// peers is the transport's sorted peer list, snapshotted once at
	// construction so the hot paths never re-derive it.
	peers   []ddp.NodeID
	peerIdx map[ddp.NodeID]int

	store *kv.Store
	log   *nvm.Log
	pipe  *nvm.Pipeline
	exec  *executor
	// off is the soft-NIC offload engine (MINOS-O); nil runs pure
	// MINOS-B, every message on the host dispatch path.
	off *offload.Engine
	// fe is the remote-client frontend (nil unless Config.ClientWindow
	// is set): bounded admission plus a worker pool over the same
	// Write/Read/Persist paths local callers use.
	fe *frontend

	// poller is non-nil when the transport supports inline polling;
	// inline is true when the node runs messages to completion on the
	// polling goroutine (no executor lanes, no recv loop). syncSend is
	// true when the transport finishes encoding before Send/Broadcast
	// return, letting the write path skip its defensive value copy.
	poller   transport.InlinePoller
	inline   bool
	syncSend bool

	// vals coalesces release-side VAL broadcasts from back-to-back
	// commits (valbatch.go); non-nil only in run-to-completion mode over
	// a synchronous encoder.
	vals *valStage

	// detecting is true when the failure detector is configured; with it
	// off, noteAlive (a clock read per inbound frame) short-circuits.
	detecting bool

	txns [txnStripeCount]*txnStripe

	scopeMu   sync.Mutex // guards scopeBuf, scopeWait
	scopeBuf  map[ddp.ScopeID][]scopeEntry
	scopeWait map[ddp.ScopeID]*scopePersist

	live     atomic.Pointer[liveView]
	liveMu   sync.Mutex // serializes liveView publication only
	lastSeen []atomic.Int64

	scopeSeq atomic.Uint64
	txnSeq   atomic.Uint64
	closed   atomic.Bool
	stop     chan struct{}
	wg       sync.WaitGroup

	// obs is the node's metrics registry ("node." prefix); the NVM
	// pipeline and the tracer register into it, so one Collect walks
	// the whole node.
	obs        *obs.Registry
	tracer     *obs.Tracer
	heartbeats *obs.Counter
	laneDepth  *obs.Gauge
	valBatches *obs.Counter
	valsStaged *obs.Counter

	// Stats counts protocol events for observability and tests.
	Stats Stats
}

// Stats exposes the node's protocol counters. The fields are
// registry-backed instruments (they appear in snapshots under the
// "node." prefix); Add/Load keep the historical atomic surface.
type Stats struct {
	Writes         *obs.Counter
	Reads          *obs.Counter
	ObsoleteWrites *obs.Counter
	Persists       *obs.Counter
	InvsHandled    *obs.Counter
	PeersFailed    *obs.Counter
	Recoveries     *obs.Counter
}

// New creates a node over tr. Call Start to begin serving.
func New(cfg Config, tr transport.Transport) *Node {
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	if cfg.DispatchWorkers <= 0 {
		cfg.DispatchWorkers = 8
	}
	if cfg.PersistDrains <= 0 {
		cfg.PersistDrains = 4
	}
	n := &Node{
		cfg:       cfg,
		policy:    ddp.PolicyFor(cfg.Model),
		id:        tr.Self(),
		tr:        tr,
		peers:     tr.Peers(),
		store:     kv.NewStore(cfg.Shards),
		log:       nvm.NewLog(),
		scopeBuf:  make(map[ddp.ScopeID][]scopeEntry),
		scopeWait: make(map[ddp.ScopeID]*scopePersist),
		stop:      make(chan struct{}),
	}
	for i := range n.txns {
		n.txns[i] = &txnStripe{pending: make(map[txnKey]*writeTxn)}
	}
	if p, ok := tr.(transport.InlinePoller); ok && cfg.RTC != RTCDisabled {
		n.poller = p
		n.inline = true
	}
	_, n.syncSend = tr.(transport.SyncEncoder)
	if n.inline && n.syncSend {
		n.vals = &valStage{}
	}
	n.detecting = cfg.HeartbeatEvery > 0 && cfg.FailAfter > 0
	n.peerIdx = make(map[ddp.NodeID]int, len(n.peers))
	n.lastSeen = make([]atomic.Int64, len(n.peers))
	now := time.Now().UnixNano()
	alive := make(map[ddp.NodeID]bool, len(n.peers))
	for i, p := range n.peers {
		n.peerIdx[p] = i
		n.lastSeen[i].Store(now)
		alive[p] = true
	}
	n.live.Store(&liveView{alive: alive, live: n.peers})
	n.obs = obs.NewRegistry("node")
	n.Stats = Stats{
		Writes:         n.obs.Counter("writes"),
		Reads:          n.obs.Counter("reads"),
		ObsoleteWrites: n.obs.Counter("obsolete_writes"),
		Persists:       n.obs.Counter("persists"),
		InvsHandled:    n.obs.Counter("invs_handled"),
		PeersFailed:    n.obs.Counter("peers_failed"),
		Recoveries:     n.obs.Counter("recoveries"),
	}
	n.heartbeats = n.obs.Counter("heartbeats_sent")
	n.laneDepth = n.obs.Gauge("exec_lane_depth_max")
	n.valBatches = n.obs.Counter("val_batches")
	n.valsStaged = n.obs.Counter("vals_staged")
	n.tracer = cfg.Tracer
	n.pipe = nvm.NewPipeline(n.log, nvm.PipelineConfig{
		// PersistDelay is a flat per-device-write cost, matching the
		// pre-pipeline semantics where every persist charged the full
		// delay; group commit amortizes it across a drained batch.
		Lat:      nvm.LatencyModel{FixedNs: cfg.PersistDelay.Nanoseconds()},
		Drains:   cfg.PersistDrains,
		OnBatch:  n.onPersistBatch,
		OnInline: n.onPersistInline,
		OnAck:    n.sendDurableAck,
	})
	n.exec = newExecutor(n, cfg.DispatchWorkers)
	if cfg.ClientWindow > 0 {
		if cfg.ClientWorkers <= 0 {
			cfg.ClientWorkers = 8
			n.cfg.ClientWorkers = 8
		}
		n.fe = newFrontend(n, cfg.ClientWindow)
	}
	if cfg.Offload != nil {
		oc := *cfg.Offload
		oc.Handler = n.handleOffloaded
		oc.Durable = n.drainDurable
		oc.Now = nil
		if n.tracer.Enabled() {
			oc.Now = n.tracer.Now
		}
		if n.inline {
			// Run-to-completion delivery is inline: by the time Route
			// sees a message, its predecessor has fully completed, so
			// promotion needs no host-lane fence.
			oc.HostFence, oc.HostDrained = nil, nil
		} else {
			oc.HostFence = n.laneMark
			oc.HostDrained = n.laneDrained
		}
		n.off = offload.New(oc)
		n.obs.Register(n.off)
	}
	n.obs.Register(n.pipe)
	if n.tracer != nil {
		n.obs.Register(n.tracer)
	}
	return n
}

// ID returns this node's identity.
func (n *Node) ID() ddp.NodeID { return n.id }

// Model returns the DDP model this node runs.
func (n *Node) Model() ddp.Model { return n.cfg.Model }

// Store exposes the replica (read-only use by tests and tools).
func (n *Node) Store() *kv.Store { return n.store }

// Log exposes the persistent log.
func (n *Node) Log() *nvm.Log { return n.log }

// Pipeline exposes the durability pipeline (tests and tools).
func (n *Node) Pipeline() *nvm.Pipeline { return n.pipe }

// Tracer returns the node's trace recorder (nil when tracing is off).
func (n *Node) Tracer() *obs.Tracer { return n.tracer }

// Describe implements obs.Source.
func (n *Node) Describe() string { return "node" }

// Collect implements obs.Source: one call walks the node's protocol
// counters, its NVM pipeline, and (when tracing) the tracer's
// accounting.
func (n *Node) Collect(s *obs.Snapshot) { n.obs.Collect(s) }

// Start begins serving protocol messages and, if configured, the
// failure detector. In run-to-completion mode the transport's polling
// goroutine delivers frames straight into the handlers; otherwise the
// recv loop feeds the key-affine executor.
func (n *Node) Start() {
	if n.inline {
		n.poller.SetHandler(n.handleFrame)
	} else {
		n.exec.start()
		n.wg.Add(1)
		go n.recvLoop()
	}
	if n.cfg.HeartbeatEvery > 0 && n.cfg.FailAfter > 0 {
		n.wg.Add(1)
		go n.heartbeatLoop()
	}
	if n.vals != nil {
		n.wg.Add(1)
		go n.valFlushLoop()
	}
	if n.fe != nil {
		n.fe.start(n.cfg.ClientWorkers)
	}
	if n.off != nil {
		n.off.Start()
	}
}

// Close shuts the node down, waking every blocked operation.
func (n *Node) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(n.stop)
	n.tr.Close()

	// Stop the durability pipeline first: executor workers blocked in a
	// scope flush and clients blocked in an inline persist unblock with
	// a false (not-durable) result.
	n.pipe.Close()

	// Wake blocked coordinators and readers so they observe closure.
	// Each broadcast happens under the waiter's own mutex: a waiter
	// holds it from its closed-check until Wait, so either it sees the
	// flag or the broadcast reaches its Wait — no lost wake-up window.
	pending, scopes := n.collectWaiters()
	for _, wt := range pending {
		wt.mu.Lock()
		wt.cond.Broadcast()
		wt.mu.Unlock()
	}
	for _, sp := range scopes {
		sp.mu.Lock()
		sp.cond.Broadcast()
		sp.mu.Unlock()
	}
	n.store.Range(func(r *kv.Record) bool {
		r.Lock()
		r.Wake()
		r.Unlock()
		return true
	})
	// The offload engine closes after the record wakes: a NIC core
	// blocked in a handler's record wait needs the wake (and the closed
	// flag it re-checks) to unwind before the engine's WaitGroup can
	// drain.
	if n.off != nil {
		n.off.Close()
	}
	n.wg.Wait()
	return nil
}

// collectWaiters snapshots every in-flight write transaction and scope
// flush across the stripes.
func (n *Node) collectWaiters() ([]*writeTxn, []*scopePersist) {
	var pending []*writeTxn
	for _, s := range n.txns {
		s.mu.Lock()
		for _, wt := range s.pending {
			pending = append(pending, wt)
		}
		s.mu.Unlock()
	}
	n.scopeMu.Lock()
	scopes := make([]*scopePersist, 0, len(n.scopeWait))
	for _, sp := range n.scopeWait {
		scopes = append(scopes, sp)
	}
	n.scopeMu.Unlock()
	return pending, scopes
}

// recvLoop routes inbound frames: protocol messages to the key-affine
// executor, recovery to its own (rare) goroutine, heartbeats inline.
func (n *Node) recvLoop() {
	defer n.wg.Done()
	defer n.exec.closeQueues()
	for f := range n.tr.Recv() {
		n.noteAlive(f.From)
		switch f.Kind {
		case transport.FrameMessage:
			// Offload gate: hot keys route to the soft-NIC pool; Route
			// runs on this single delivery goroutine, which is what
			// keeps the per-key ownership transitions ordered.
			if n.off != nil && offloadable(f.Msg) && n.off.Route(f.Msg) {
				continue
			}
			n.exec.dispatch(f.Msg)
		case transport.FrameHeartbeat:
			// noteAlive above is the whole job.
		case transport.FrameClientRequest:
			n.admitClient(f)
		case transport.FrameRecoveryRequest:
			n.spawnRecovery(f.From, f.Since)
		case transport.FrameRecoveryEntries:
			n.applyRecovery(f.Entries)
		}
	}
}

// handleFrame is the run-to-completion frame sink: it runs on whichever
// goroutine holds the transport's poll token (the endpoint's poller or
// a coordinator polling inline during its ack wait) and drives each
// protocol message through its handler with no executor hand-off.
// Frame values may borrow transport storage; every retaining path
// (record apply, scope buffer, log append) copies before parking or
// returning, so nothing outlives the callback.
//
//minos:hotpath
func (n *Node) handleFrame(f transport.Frame) {
	n.noteAlive(f.From)
	switch f.Kind {
	case transport.FrameMessage:
		// Offload gate: only the poll-token holder reaches here, so
		// Route's single-caller contract holds in RTC mode too. The
		// engine copies the (borrowed) frame value at admission.
		if n.off != nil && offloadable(f.Msg) && n.off.Route(f.Msg) {
			return
		}
		n.handleMessage(f.Msg)
	case transport.FrameHeartbeat:
		// noteAlive above is the whole job.
	case transport.FrameClientRequest:
		// NEVER execute the operation here: this goroutine holds the
		// poll token, and a client op waiting for its own acks would
		// deadlock against it. admitClient only enqueues (or sheds).
		n.admitClient(f)
	case transport.FrameRecoveryRequest:
		n.spawnRecovery(f.From, f.Since)
	case transport.FrameRecoveryEntries:
		n.applyRecovery(f.Entries)
	}
}

// admitClient routes a client request into the frontend; with no
// frontend configured the node answers StatusErr so remote clients
// fail fast instead of hanging.
func (n *Node) admitClient(f transport.Frame) {
	if n.fe == nil {
		_ = n.tr.Send(f.From, transport.Frame{
			Kind:   transport.FrameClientResponse,
			Client: f.Client,
			Resp:   transport.ClientResponse{Op: f.Req.Op, Status: transport.StatusErr},
		})
		return
	}
	n.fe.admit(f)
}

// spawnRecovery serves a log-shipping request off the delivery path;
// recovery is rare and EntriesSince is O(log tail).
func (n *Node) spawnRecovery(from ddp.NodeID, since uint64) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.serveRecovery(from, since)
	}()
}

// send transmits a protocol message; transport failures are left to the
// failure detector.
func (n *Node) send(to ddp.NodeID, m ddp.Message) {
	n.flushVals() // staged VALs precede later traffic (FIFO)
	m.From = n.id
	if err := n.tr.Send(to, transport.Frame{Kind: transport.FrameMessage, Msg: m}); err != nil {
		// The peer is unreachable; the detector (or reconnection) will
		// resolve it. Protocol correctness never depends on a
		// best-effort send succeeding.
		return
	}
}

// sendAll transmits m to every follower. When the follower set is the
// whole cluster (the common case: nothing has failed), it uses the
// transport's broadcast so the frame is encoded once and fanned out as
// shared bytes — the paper's message-broadcast optimization (§VI).
// With a reduced follower set it falls back to per-peer sends, since
// broadcasting would also wake peers the detector has declared dead.
func (n *Node) sendAll(followers []ddp.NodeID, m ddp.Message) {
	n.flushVals() // staged VALs precede later traffic (FIFO)
	if len(followers) == len(n.peers) {
		m.From = n.id
		// Best effort, like send: unreachable peers are the failure
		// detector's problem.
		_ = n.tr.Broadcast(transport.Frame{Kind: transport.FrameMessage, Msg: m})
		return
	}
	for _, f := range followers {
		n.send(f, m)
	}
}

// stripeFor returns the transaction-table stripe for key.
func (n *Node) stripeFor(key ddp.Key) *txnStripe {
	return n.txns[key.Hash()>>32&(txnStripeCount-1)]
}

// generateTS issues a unique timestamp for a write to key; the caller
// holds the record lock, which guards the record's issued-version
// high-water mark — no additional lock and no map on the path.
//
//minos:hotpath
func (n *Node) generateTS(r *kv.Record) ddp.Timestamp {
	v := r.Meta.VolatileTS.Version
	if r.Issued > v {
		v = r.Issued
	}
	v++
	r.Issued = v
	return ddp.Timestamp{Node: n.id, Version: v}
}

// liveFollowers returns the followers currently considered alive. The
// slice is an immutable snapshot shared with the liveness view; callers
// must not mutate it.
func (n *Node) liveFollowers() []ddp.NodeID {
	return n.live.Load().live
}

// isAlive is a lock-free read of the published liveness snapshot; it
// sits inside the waitConsistency/waitPersistency spin predicates.
func (n *Node) isAlive(id ddp.NodeID) bool {
	return n.live.Load().alive[id]
}

func (n *Node) addPending(key ddp.Key, ts ddp.Timestamp, wt *writeTxn) {
	s := n.stripeFor(key)
	s.mu.Lock()
	s.pending[txnKey{key, ts}] = wt
	s.mu.Unlock()
}

// removePending retires a write transaction and recycles its
// bookkeeping. Taking the stripe lock is the quiescence point: handlers
// only obtain wt references under it (handleAck holds it for the whole
// ack update), so once the delete commits no handler can still touch
// the recycled state. Close's broadcast may race a recycle, but a
// spurious broadcast on a reused cond is benign — waiters re-check
// their predicates.
//
//minos:hotpath
func (n *Node) removePending(key ddp.Key, ts ddp.Timestamp) {
	s := n.stripeFor(key)
	k := txnKey{key, ts}
	s.mu.Lock()
	wt := s.pending[k]
	delete(s.pending, k)
	s.mu.Unlock()
	if wt != nil {
		wtPool.Put(wt)
	}
}

// persist makes (key, ts, value) durable through the pipeline: it
// blocks until the group commit holding the entry drains (the
// durability point) and returns false if the node closed first.
func (n *Node) persist(key ddp.Key, ts ddp.Timestamp, value []byte, sc ddp.ScopeID) bool {
	return n.pipe.Persist(key, ts, value, sc)
}

// persistThen pipelines the update and sends kind to the coordinator
// once the group commit containing it has drained — the follower's
// persist-before-ack step (Fig 2 L39-40) without parking an executor
// worker for the NVM latency. The continuation runs on the drain
// engine strictly after the log append, so the acknowledgment can
// never outrun durability.
//minos:hotpath
func (n *Node) persistThen(m ddp.Message, kind ddp.MsgKind) {
	to, key, ts, sc := m.From, m.Key, m.TS, m.Scope
	// Followers have no coordinator transaction sequence; the sampling
	// decision hashes the issued version instead, so a sampled run pays
	// the follower-side clock reads at the same 1-in-N rate.
	traced := n.tracer.Enabled() && n.tracer.SampleTxn(uint64(ts.Version))
	if !traced && n.pipe.Inline() {
		// Zero-latency pipeline: the append completes synchronously in
		// Enqueue, so the acknowledgment can follow directly — the
		// persist-before-ack order holds with no continuation closure.
		if n.pipe.Enqueue(key, ts, m.Value, sc, nil) {
			n.send(to, ddp.Message{Kind: kind, Key: key, TS: ts, Scope: sc, Size: ddp.ControlSize()})
		}
		return
	}
	n.persistThenQueued(m, kind, traced)
}

// sendDurableAck is the pipeline's OnAck hook: it ships the durable
// acknowledgment an EnqueueAck entry carries. It runs on the drain
// engine strictly after the entry's group commit, so the
// persist-before-ack order holds with no per-entry closure.
//
//minos:hotpath
func (n *Node) sendDurableAck(to ddp.NodeID, kind ddp.MsgKind, key ddp.Key, ts ddp.Timestamp, sc ddp.ScopeID) {
	n.send(to, ddp.Message{Kind: kind, Key: key, TS: ts, Scope: sc, Size: ddp.ControlSize()})
}

// persistThenQueued is the queued-pipeline (or traced) half of
// persistThen. The untraced common case rides the pipeline's ack
// fields (EnqueueAck → sendDurableAck), allocating nothing; only a
// sampled transaction pays for a continuation closure, which is what
// lets it wrap the acknowledgment in trace spans.
func (n *Node) persistThenQueued(m ddp.Message, kind ddp.MsgKind, traced bool) {
	to, key, ts, sc := m.From, m.Key, m.TS, m.Scope
	if !traced {
		n.pipe.EnqueueAck(key, ts, m.Value, sc, to, kind)
		return
	}
	start := n.tracer.Now()
	n.pipe.Enqueue(key, ts, m.Value, sc, func() {
		// The follower's durability wait and the acknowledgment that
		// follows it, as two chained spans: the persist (group_commit)
		// span always closes before the ack (val) span opens, which the
		// trace ordering tests pin as the persist-before-ack invariant.
		// Followers have no transaction id; spans correlate by (Key, Ver).
		var ackStart int64
		if traced {
			ackStart = n.tracer.Now()
			n.tracer.Record(obs.Span{
				Key: uint64(key), Ver: int64(ts.Version), Node: int32(n.id),
				Role: obs.RoleFollower, Phase: obs.PhaseGroupCommit,
				Start: start, End: ackStart,
			})
		}
		n.send(to, ddp.Message{Kind: kind, Key: key, TS: ts, Scope: sc, Size: ddp.ControlSize()})
		if traced {
			n.tracer.Record(obs.Span{
				Key: uint64(key), Ver: int64(ts.Version), Node: int32(n.id),
				Role: obs.RoleFollower, Phase: obs.PhaseVal,
				Start: ackStart, End: n.tracer.Now(),
			})
		}
	})
}

// persistAsync pipelines the update with no completion action (Event's
// lazy follower persist, REnf's background coordinator persist).
func (n *Node) persistAsync(key ddp.Key, ts ddp.Timestamp, value []byte, sc ddp.ScopeID) {
	n.pipe.Enqueue(key, ts, value, sc, nil)
}

// persistMany flushes a scope's buffered entries as one pipelined
// group, blocking until all of them are durable; false means the node
// closed first.
func (n *Node) persistMany(entries []scopeEntry, sc ddp.ScopeID) bool {
	if len(entries) == 0 {
		return true
	}
	ups := make([]nvm.Update, len(entries))
	for i, e := range entries {
		ups[i] = nvm.Update{Key: e.key, TS: e.ts, Value: e.value, Scope: sc}
	}
	return n.pipe.PersistMany(ups)
}

// onPersistBatch runs on a drain engine after each group commit: it
// counts the drained entries and wakes each touched record once per
// batch (instead of once per entry) so PersistencySpin waiters observe
// the new durable timestamps.
func (n *Node) onPersistBatch(keys []ddp.Key, entries int) {
	n.Stats.Persists.Add(int64(entries))
	for _, k := range keys {
		if r := n.store.Get(k); r != nil {
			r.Lock()
			r.Wake()
			r.Unlock()
		}
	}
}

// onPersistInline is onPersistBatch for the pipeline's synchronous
// single-entry append path: same counter, same record wake, no slice.
//
//minos:hotpath
func (n *Node) onPersistInline(key ddp.Key) {
	n.Stats.Persists.Add(1)
	if r := n.store.Get(key); r != nil {
		r.Lock()
		r.Wake()
		r.Unlock()
	}
}

func (n *Node) String() string {
	return fmt.Sprintf("node %d (%v)", n.id, n.cfg.Model)
}
