// Package node implements a live MINOS-B node: the leaderless DDP
// coordinator and follower algorithms of Fig 2 (with the Fig 3 per-model
// deltas) running on real goroutines over a Transport, with the failure
// detection and log-shipping recovery extensions of §III-E.
//
// This is the executable counterpart of the simulated cluster: both
// consume the protocol semantics in internal/ddp, so the model checker's
// and simulator's correctness arguments carry over.
package node

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/minos-ddp/minos/internal/ddp"
	"github.com/minos-ddp/minos/internal/kv"
	"github.com/minos-ddp/minos/internal/nvm"
	"github.com/minos-ddp/minos/internal/transport"
)

// ErrClosed is returned by operations on a closed node.
var ErrClosed = errors.New("node: closed")

// Config tunes a live node.
type Config struct {
	// Model is the <consistency, persistency> model to run.
	Model ddp.Model
	// PersistDelay emulates the NVM write latency charged before a
	// persist is considered durable (the paper emulates 1295ns/KB).
	// Zero persists instantly.
	PersistDelay time.Duration
	// HeartbeatEvery and FailAfter drive the failure detector: a peer
	// silent for FailAfter is declared failed and writes stop waiting
	// for it. Zero values disable detection (the pure protocol).
	HeartbeatEvery time.Duration
	FailAfter      time.Duration
	// Shards sizes the KV store's lock striping.
	Shards int
}

// txnKey identifies a write transaction; TS_WR is unique per record only.
type txnKey struct {
	key ddp.Key
	ts  ddp.Timestamp
}

// writeTxn is the coordinator-side state of one in-flight client-write.
type writeTxn struct {
	mu        sync.Mutex
	cond      *sync.Cond
	txn       *ddp.WriteTxn
	followers []ddp.NodeID
}

func newWriteTxn(p ddp.Policy, self ddp.NodeID, key ddp.Key, ts ddp.Timestamp, followers []ddp.NodeID) *writeTxn {
	wt := &writeTxn{
		txn:       ddp.NewWriteTxn(p, self, key, ts, len(followers)),
		followers: append([]ddp.NodeID(nil), followers...),
	}
	wt.cond = sync.NewCond(&wt.mu)
	return wt
}

// scopeEntry is a deferred persist under <Lin, Scope>.
type scopeEntry struct {
	key   ddp.Key
	ts    ddp.Timestamp
	value []byte
}

// scopePersist tracks one [PERSIST]sc at its coordinator.
type scopePersist struct {
	mu        sync.Mutex
	cond      *sync.Cond
	followers []ddp.NodeID
	got       map[ddp.NodeID]bool
}

// Node is one live MINOS-B replica.
type Node struct {
	cfg    Config
	policy ddp.Policy
	id     ddp.NodeID
	tr     transport.Transport

	store *kv.Store
	log   *nvm.Log

	mu        sync.Mutex // guards pending, scopes, issued, liveness
	pending   map[txnKey]*writeTxn
	scopeBuf  map[ddp.ScopeID][]scopeEntry
	scopeWait map[ddp.ScopeID]*scopePersist
	issued    map[ddp.Key]ddp.Version
	alive     map[ddp.NodeID]bool
	lastSeen  map[ddp.NodeID]time.Time

	scopeSeq atomic.Uint64
	closed   atomic.Bool
	stop     chan struct{}
	wg       sync.WaitGroup

	// Stats counts protocol events for observability and tests.
	Stats Stats
}

// Stats counts protocol events. All fields are atomic.
type Stats struct {
	Writes         atomic.Int64
	Reads          atomic.Int64
	ObsoleteWrites atomic.Int64
	Persists       atomic.Int64
	InvsHandled    atomic.Int64
	PeersFailed    atomic.Int64
	Recoveries     atomic.Int64
}

// New creates a node over tr. Call Start to begin serving.
func New(cfg Config, tr transport.Transport) *Node {
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	n := &Node{
		cfg:       cfg,
		policy:    ddp.PolicyFor(cfg.Model),
		id:        tr.Self(),
		tr:        tr,
		store:     kv.NewStore(cfg.Shards),
		log:       nvm.NewLog(),
		pending:   make(map[txnKey]*writeTxn),
		scopeBuf:  make(map[ddp.ScopeID][]scopeEntry),
		scopeWait: make(map[ddp.ScopeID]*scopePersist),
		issued:    make(map[ddp.Key]ddp.Version),
		alive:     make(map[ddp.NodeID]bool),
		lastSeen:  make(map[ddp.NodeID]time.Time),
		stop:      make(chan struct{}),
	}
	for _, p := range tr.Peers() {
		n.alive[p] = true
		n.lastSeen[p] = time.Now()
	}
	return n
}

// ID returns this node's identity.
func (n *Node) ID() ddp.NodeID { return n.id }

// Model returns the DDP model this node runs.
func (n *Node) Model() ddp.Model { return n.cfg.Model }

// Store exposes the replica (read-only use by tests and tools).
func (n *Node) Store() *kv.Store { return n.store }

// Log exposes the persistent log.
func (n *Node) Log() *nvm.Log { return n.log }

// Start begins serving protocol messages and, if configured, the
// failure detector.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.recvLoop()
	if n.cfg.HeartbeatEvery > 0 && n.cfg.FailAfter > 0 {
		n.wg.Add(1)
		go n.heartbeatLoop()
	}
}

// Close shuts the node down, waking every blocked operation.
func (n *Node) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(n.stop)
	n.tr.Close()

	// Wake blocked coordinators and readers so they observe closure.
	// Each broadcast happens under the waiter's own mutex: a waiter
	// holds it from its closed-check until Wait, so either it sees the
	// flag or the broadcast reaches its Wait — no lost wake-up window.
	n.mu.Lock()
	pending := make([]*writeTxn, 0, len(n.pending))
	for _, wt := range n.pending {
		pending = append(pending, wt)
	}
	scopes := make([]*scopePersist, 0, len(n.scopeWait))
	for _, sp := range n.scopeWait {
		scopes = append(scopes, sp)
	}
	n.mu.Unlock()
	for _, wt := range pending {
		wt.mu.Lock()
		wt.cond.Broadcast()
		wt.mu.Unlock()
	}
	for _, sp := range scopes {
		sp.mu.Lock()
		sp.cond.Broadcast()
		sp.mu.Unlock()
	}
	n.store.Range(func(r *kv.Record) bool {
		r.Lock()
		r.Wake()
		r.Unlock()
		return true
	})
	n.wg.Wait()
	return nil
}

// recvLoop dispatches inbound frames.
func (n *Node) recvLoop() {
	defer n.wg.Done()
	for f := range n.tr.Recv() {
		n.noteAlive(f.From)
		switch f.Kind {
		case transport.FrameMessage:
			m := f.Msg
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.handleMessage(m)
			}()
		case transport.FrameHeartbeat:
			// noteAlive above is the whole job.
		case transport.FrameRecoveryRequest:
			since := f.Since
			from := f.From
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				n.serveRecovery(from, since)
			}()
		case transport.FrameRecoveryEntries:
			n.applyRecovery(f.Entries)
		}
	}
}

// send transmits a protocol message; transport failures are left to the
// failure detector.
func (n *Node) send(to ddp.NodeID, m ddp.Message) {
	m.From = n.id
	if err := n.tr.Send(to, transport.Frame{Kind: transport.FrameMessage, Msg: m}); err != nil {
		// The peer is unreachable; the detector (or reconnection) will
		// resolve it. Protocol correctness never depends on a
		// best-effort send succeeding.
		return
	}
}

// sendAll transmits m to every follower. When the follower set is the
// whole cluster (the common case: nothing has failed), it uses the
// transport's broadcast so the frame is encoded once and fanned out as
// shared bytes — the paper's message-broadcast optimization (§VI).
// With a reduced follower set it falls back to per-peer sends, since
// broadcasting would also wake peers the detector has declared dead.
func (n *Node) sendAll(followers []ddp.NodeID, m ddp.Message) {
	if len(followers) == len(n.tr.Peers()) {
		m.From = n.id
		// Best effort, like send: unreachable peers are the failure
		// detector's problem.
		_ = n.tr.Broadcast(transport.Frame{Kind: transport.FrameMessage, Msg: m})
		return
	}
	for _, f := range followers {
		n.send(f, m)
	}
}

// generateTS issues a unique timestamp for a write to key; the caller
// holds the record lock, serializing same-key generation.
func (n *Node) generateTS(key ddp.Key, r *kv.Record) ddp.Timestamp {
	n.mu.Lock()
	defer n.mu.Unlock()
	v := r.Meta.VolatileTS.Version
	if iv := n.issued[key]; iv > v {
		v = iv
	}
	v++
	n.issued[key] = v
	return ddp.Timestamp{Node: n.id, Version: v}
}

// liveFollowers snapshots the followers currently considered alive.
func (n *Node) liveFollowers() []ddp.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []ddp.NodeID
	for _, p := range n.tr.Peers() {
		if n.alive[p] {
			out = append(out, p)
		}
	}
	return out
}

func (n *Node) isAlive(id ddp.NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive[id]
}

func (n *Node) addPending(key ddp.Key, ts ddp.Timestamp, wt *writeTxn) {
	n.mu.Lock()
	n.pending[txnKey{key, ts}] = wt
	n.mu.Unlock()
}

func (n *Node) removePending(key ddp.Key, ts ddp.Timestamp) {
	n.mu.Lock()
	delete(n.pending, txnKey{key, ts})
	n.mu.Unlock()
}

func (n *Node) lookupPending(key ddp.Key, ts ddp.Timestamp) *writeTxn {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pending[txnKey{key, ts}]
}

// persist makes (key, ts, value) durable: wait the emulated NVM latency,
// append to the log (the durability point), and wake spinners.
func (n *Node) persist(key ddp.Key, ts ddp.Timestamp, value []byte, sc ddp.ScopeID) {
	if d := n.cfg.PersistDelay; d > 0 {
		time.Sleep(d)
	}
	n.log.Append(key, ts, value, sc)
	n.Stats.Persists.Add(1)
	if r := n.store.Get(key); r != nil {
		r.Lock()
		r.Wake()
		r.Unlock()
	}
}

func (n *Node) String() string {
	return fmt.Sprintf("node %d (%v)", n.id, n.cfg.Model)
}
