package node

import (
	"sync"

	"github.com/minos-ddp/minos/internal/ddp"
)

// NewScope allocates a cluster-unique scope identifier for <Lin, Scope>
// writes.
func (n *Node) NewScope() ddp.ScopeID {
	return ddp.ScopeID(uint64(n.id)<<40 | n.scopeSeq.Add(1))
}

// bufferScope defers a persist until the scope's [PERSIST]sc.
func (n *Node) bufferScope(sc ddp.ScopeID, key ddp.Key, ts ddp.Timestamp, value []byte) {
	n.scopeMu.Lock()
	n.scopeBuf[sc] = append(n.scopeBuf[sc], scopeEntry{
		key: key, ts: ts, value: append([]byte(nil), value...),
	})
	n.scopeMu.Unlock()
}

func (n *Node) takeScope(sc ddp.ScopeID) []scopeEntry {
	n.scopeMu.Lock()
	defer n.scopeMu.Unlock()
	return n.scopeBuf[sc]
}

func (n *Node) dropScope(sc ddp.ScopeID) {
	n.scopeMu.Lock()
	delete(n.scopeBuf, sc)
	n.scopeMu.Unlock()
}

// Persist runs the [PERSIST]sc transaction (Fig 3 vii): ask every
// follower to persist the scope's writes, persist the local ones, wait
// for all [ACK_P]sc, then send [VAL_P]sc. When Persist returns, every
// write in the scope is durable on every node. Under non-Scope models
// Persist is a no-op (their policies persist each write directly).
func (n *Node) Persist(sc ddp.ScopeID) error {
	if !n.policy.Scoped {
		return nil
	}
	if n.closed.Load() {
		return ErrClosed
	}
	followers := n.liveFollowers()
	sp := &scopePersist{
		followers: followers,
		got:       make(map[ddp.NodeID]bool),
	}
	sp.cond = sync.NewCond(&sp.mu)
	n.scopeMu.Lock()
	n.scopeWait[sc] = sp
	n.scopeMu.Unlock()
	defer func() {
		n.scopeMu.Lock()
		delete(n.scopeWait, sc)
		n.scopeMu.Unlock()
	}()

	req := ddp.Message{Kind: ddp.KindPersist, Scope: sc, Size: ddp.ControlSize()}
	n.sendAll(followers, req)

	// Persist this node's buffered writes for the scope as one
	// pipelined group commit.
	entries := n.takeScope(sc)
	if !n.persistMany(entries, sc) {
		return ErrClosed
	}

	// Spin for all [ACK_P]sc from live followers.
	sp.mu.Lock()
	for {
		if n.closed.Load() {
			sp.mu.Unlock()
			return ErrClosed
		}
		done := true
		for _, f := range sp.followers {
			if !sp.got[f] && n.isAlive(f) {
				done = false
				break
			}
		}
		if done {
			break
		}
		sp.cond.Wait()
	}
	sp.mu.Unlock()

	// Every node persisted the scope: publish durability locally.
	for _, e := range entries {
		r := n.store.GetOrCreate(e.key)
		r.Lock()
		r.Meta.AdvanceGlbDurable(e.ts)
		r.Wake()
		r.Unlock()
	}
	n.dropScope(sc)

	valP := ddp.Message{Kind: ddp.KindValP, Scope: sc, Size: ddp.ControlSize()}
	n.sendAll(followers, valP)
	return nil
}

// handlePersist services [PERSIST]sc at a follower: persist every
// buffered write of the scope (one group commit), then acknowledge.
// Entries stay buffered until [VAL_P]sc publishes their glb_durableTS.
// A node that closes mid-flush sends no acknowledgment.
func (n *Node) handlePersist(m ddp.Message) {
	if !n.persistMany(n.takeScope(m.Scope), m.Scope) {
		return
	}
	n.send(m.From, ddp.Message{Kind: ddp.KindAckP, Scope: m.Scope, Size: ddp.ControlSize()})
}

// handleScopeAck records one [ACK_P]sc at the coordinator.
func (n *Node) handleScopeAck(m ddp.Message) {
	n.scopeMu.Lock()
	sp := n.scopeWait[m.Scope]
	n.scopeMu.Unlock()
	if sp == nil {
		return // late ack for a completed flush
	}
	sp.mu.Lock()
	sp.got[m.From] = true
	sp.cond.Broadcast()
	sp.mu.Unlock()
}

// handleScopeValP completes a scope at a follower: all nodes persisted
// it, so publish glb_durableTS for its writes and drop the buffer.
func (n *Node) handleScopeValP(m ddp.Message) {
	for _, e := range n.takeScope(m.Scope) {
		r := n.store.GetOrCreate(e.key)
		r.Lock()
		r.Meta.AdvanceGlbDurable(e.ts)
		r.Wake()
		r.Unlock()
	}
	n.dropScope(m.Scope)
}
