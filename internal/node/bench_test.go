package node

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/minos-ddp/minos/internal/ddp"
	"github.com/minos-ddp/minos/internal/transport"
)

// Write-path benchmarks across the five persistency models, with the
// NVM latency both disabled and at the paper's 1295 ns device write.
// The parallel variants are where group commit shows: concurrent
// writes coalesce into shared drain batches, so the per-write share of
// the persist delay shrinks with the offered load.

var benchDelays = []time.Duration{0, 1295 * time.Nanosecond}

func benchCluster(b *testing.B, model ddp.Model, delay time.Duration) *Node {
	b.Helper()
	net := transport.NewMemNetwork(3)
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i] = New(Config{Model: model, PersistDelay: delay}, net.Endpoint(ddp.NodeID(i)))
		nodes[i].Start()
	}
	b.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes[0]
}

// scopeFlushEvery batches <Lin, Scope> writes per flush, mirroring the
// paper's multi-write persistency epochs.
const scopeFlushEvery = 16

func BenchmarkNodeWrite(b *testing.B) {
	val := bytes.Repeat([]byte("v"), 128)
	for _, model := range ddp.Models {
		for _, d := range benchDelays {
			b.Run(fmt.Sprintf("%v/delay=%v", model, d), func(b *testing.B) {
				n := benchCluster(b, model, d)
				b.ResetTimer()
				if model == ddp.LinScope {
					sc := n.NewScope()
					inScope := 0
					for i := 0; i < b.N; i++ {
						if err := n.WriteScoped(ddp.Key(i&255), val, sc); err != nil {
							b.Fatal(err)
						}
						if inScope++; inScope == scopeFlushEvery {
							if err := n.Persist(sc); err != nil {
								b.Fatal(err)
							}
							sc = n.NewScope()
							inScope = 0
						}
					}
					if inScope > 0 {
						if err := n.Persist(sc); err != nil {
							b.Fatal(err)
						}
					}
					return
				}
				for i := 0; i < b.N; i++ {
					if err := n.Write(ddp.Key(i&255), val); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Read-path benchmarks: reads are always local (§III-D), so one model
// suffices. BenchmarkNodeRead measures the copying API (one alloc for
// the returned value); BenchmarkNodeReadInto the seqlock fast path
// with a recycled caller buffer (0 allocs).
func BenchmarkNodeRead(b *testing.B) {
	val := bytes.Repeat([]byte("r"), 128)
	n := benchCluster(b, ddp.LinSynch, 0)
	for i := 0; i < 256; i++ {
		if err := n.Write(ddp.Key(i), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Read(ddp.Key(i & 255)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNodeReadInto(b *testing.B) {
	val := bytes.Repeat([]byte("r"), 128)
	n := benchCluster(b, ddp.LinSynch, 0)
	for i := 0; i < 256; i++ {
		if err := n.Write(ddp.Key(i), val); err != nil {
			b.Fatal(err)
		}
	}
	buf := make([]byte, 0, len(val))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := n.ReadInto(ddp.Key(i&255), buf)
		if err != nil {
			b.Fatal(err)
		}
		buf = v[:0]
	}
}

func BenchmarkNodeWriteParallel(b *testing.B) {
	val := bytes.Repeat([]byte("v"), 128)
	for _, model := range ddp.Models {
		for _, d := range benchDelays {
			b.Run(fmt.Sprintf("%v/delay=%v", model, d), func(b *testing.B) {
				n := benchCluster(b, model, d)
				var ctr atomic.Uint64
				b.SetParallelism(8)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					if model == ddp.LinScope {
						sc := n.NewScope()
						inScope := 0
						for pb.Next() {
							i := ctr.Add(1)
							if err := n.WriteScoped(ddp.Key(i&1023), val, sc); err != nil {
								b.Fatal(err)
							}
							if inScope++; inScope == scopeFlushEvery {
								if err := n.Persist(sc); err != nil {
									b.Fatal(err)
								}
								sc = n.NewScope()
								inScope = 0
							}
						}
						if inScope > 0 {
							if err := n.Persist(sc); err != nil {
								b.Fatal(err)
							}
						}
						return
					}
					for pb.Next() {
						i := ctr.Add(1)
						if err := n.Write(ddp.Key(i&1023), val); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}
