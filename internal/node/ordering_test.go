package node

import (
	"testing"
	"time"

	"github.com/minos-ddp/minos/internal/ddp"
	"github.com/minos-ddp/minos/internal/transport"
)

// TestKeyAffineOrdering drives a follower directly over a raw transport
// endpoint: a burst of INVs for one key, timestamps strictly ascending
// in send order. The key-affine executor must apply them in arrival
// order, so none may take the obsolete path (every INV persists and
// every acknowledgment carries the INV's own timestamp, in order).
// Under the old goroutine-per-message dispatch a later INV could apply
// first, turning earlier ones into spurious obsolete entries.
func TestKeyAffineOrdering(t *testing.T) {
	net := transport.NewMemNetwork(2)
	client := net.Endpoint(0) // raw: we play the coordinator by hand
	n := New(Config{Model: ddp.LinSynch}, net.Endpoint(1))
	n.Start()
	defer n.Close()

	const key = ddp.Key(7)
	const writes = 200
	for v := 1; v <= writes; v++ {
		m := ddp.Message{
			Kind: ddp.KindInv, Key: key,
			TS:    ddp.Timestamp{Node: 0, Version: ddp.Version(v)},
			Value: []byte{byte(v)},
			Size:  ddp.DataSize(1),
		}
		if err := client.Send(1, transport.Frame{Kind: transport.FrameMessage, Msg: m}); err != nil {
			t.Fatalf("send INV v%d: %v", v, err)
		}
	}

	// Collect the combined Synch ACKs; they must come back in timestamp
	// order because the worker processed the INVs in FIFO order.
	got := 0
	deadline := time.After(10 * time.Second)
	for got < writes {
		select {
		case f, ok := <-client.Recv():
			if !ok {
				t.Fatal("client endpoint closed early")
			}
			if f.Kind != transport.FrameMessage || f.Msg.Kind != ddp.KindAck {
				continue
			}
			got++
			if want := ddp.Version(got); f.Msg.TS.Version != want {
				t.Fatalf("ack %d carries version %d, want %d: INVs were reordered",
					got, f.Msg.TS.Version, want)
			}
		case <-deadline:
			t.Fatalf("timed out with %d/%d acks", got, writes)
		}
	}

	// In-order application means no INV was obsolete: all of them
	// persisted, and the record sits at the final timestamp.
	if l := n.Log().Len(); l != writes {
		t.Fatalf("log has %d entries, want %d (obsolete INVs skipped persisting)", l, writes)
	}
	r := n.Store().Get(key)
	if r == nil {
		t.Fatal("record missing")
	}
	r.Lock()
	ts := r.Meta.VolatileTS
	r.Unlock()
	if ts.Version != writes {
		t.Fatalf("volatile TS version %d, want %d", ts.Version, writes)
	}
	if invs := n.Stats.InvsHandled.Load(); invs != writes {
		t.Fatalf("handled %d INVs, want %d", invs, writes)
	}
}

// TestNodeGroupCommit exercises the node-level half of the group-commit
// contract: with a real persist delay, concurrent Synch writes must
// coalesce (fewer drained batches than entries) while every write still
// returns only after it is locally durable on all nodes.
func TestNodeGroupCommit(t *testing.T) {
	net := transport.NewMemNetwork(3)
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i] = New(Config{
			Model:        ddp.LinSynch,
			PersistDelay: 2 * time.Millisecond,
			// One drain per node so concurrent persists must share a queue.
			PersistDrains: 1,
		}, net.Endpoint(ddp.NodeID(i)))
		nodes[i].Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	const writers, perWriter = 8, 5
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			for i := 0; i < perWriter; i++ {
				key := ddp.Key(w*perWriter + i)
				if err := nodes[0].Write(key, []byte{byte(w), byte(i)}); err != nil {
					errs <- err
					return
				}
				if !nodes[0].Log().LocallyDurable(key, ddp.Timestamp{Node: 0, Version: 1}) {
					errs <- errNotDurable
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	total := int64(writers * perWriter)
	for i, nd := range nodes {
		p := nd.Pipeline()
		if p.Entries() != total {
			t.Fatalf("node %d drained %d entries, want %d", i, p.Entries(), total)
		}
		if p.Batches() >= total {
			t.Fatalf("node %d used %d batches for %d entries: no group commit happened",
				i, p.Batches(), total)
		}
	}
}

var errNotDurable = errNotDurableT{}

type errNotDurableT struct{}

func (errNotDurableT) Error() string { return "write returned before locally durable" }
