package node

import (
	"testing"

	"github.com/minos-ddp/minos/internal/ddp"
	"github.com/minos-ddp/minos/internal/transport"
)

// BenchmarkRingSerialWrite is the PR's headline microbenchmark: one
// client, 3 nodes, <Lin,Synch>, no emulated NVM delay, shared-memory
// rings with run-to-completion dispatch. The companion allocs assertion
// lives in the hotpathalloc annotations; here b.ReportAllocs keeps the
// number visible.
func BenchmarkRingSerialWrite(b *testing.B) {
	net := transport.NewRingNetwork(3)
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i] = New(Config{Model: ddp.LinSynch}, net.Endpoint(ddp.NodeID(i)))
		nodes[i].Start()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	val := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nodes[0].Write(ddp.Key(i&255), val); err != nil {
			b.Fatal(err)
		}
	}
}
