package node

import (
	"time"

	"github.com/minos-ddp/minos/internal/ddp"
	"github.com/minos-ddp/minos/internal/kv"
	"github.com/minos-ddp/minos/internal/transport"
)

// This file implements the §III-E extensions: timeout-based failure
// detection and log-shipping recovery for re-inserted nodes.

// heartbeatLoop beacons liveness to every peer and declares peers that
// have been silent past the failure timeout.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		// Best effort; an unreachable peer shows up as silence. One
		// broadcast encodes the beacon once for the whole cluster.
		_ = n.tr.Broadcast(transport.Frame{Kind: transport.FrameHeartbeat})
		n.checkTimeouts()
	}
}

// noteAlive marks a peer as seen. A previously failed peer speaking
// again is re-inserted into the live set; it is responsible for running
// Recover itself to catch up its replica.
func (n *Node) noteAlive(id ddp.NodeID) {
	n.mu.Lock()
	wasDead := !n.alive[id]
	n.alive[id] = true
	n.lastSeen[id] = time.Now()
	n.mu.Unlock()
	if wasDead {
		// Membership grew back: nothing blocks on this, but pending
		// completion predicates never shrink their follower sets, so no
		// wake-up is needed.
		_ = wasDead
	}
}

// checkTimeouts declares peers silent past FailAfter as failed.
func (n *Node) checkTimeouts() {
	now := time.Now()
	var failed []ddp.NodeID
	n.mu.Lock()
	for _, p := range n.tr.Peers() {
		if n.alive[p] && now.Sub(n.lastSeen[p]) > n.cfg.FailAfter {
			n.alive[p] = false
			failed = append(failed, p)
		}
	}
	n.mu.Unlock()
	for _, p := range failed {
		n.onPeerFailed(p)
	}
}

// onPeerFailed unblocks everything that was waiting on the failed peer:
// pending write transactions stop expecting its acknowledgments, scope
// flushes stop expecting its [ACK_P]sc, and read locks owned by writes
// it coordinated are released — those writes can never validate.
func (n *Node) onPeerFailed(id ddp.NodeID) {
	n.Stats.PeersFailed.Add(1)
	n.mu.Lock()
	pending := make([]*writeTxn, 0, len(n.pending))
	for _, wt := range n.pending {
		pending = append(pending, wt)
	}
	scopes := make([]*scopePersist, 0, len(n.scopeWait))
	for _, sp := range n.scopeWait {
		scopes = append(scopes, sp)
	}
	n.mu.Unlock()

	for _, wt := range pending {
		wt.mu.Lock()
		wt.cond.Broadcast()
		wt.mu.Unlock()
	}
	for _, sp := range scopes {
		sp.mu.Lock()
		sp.cond.Broadcast()
		sp.mu.Unlock()
	}

	// Abort the failed coordinator's in-flight writes locally: their
	// VALs will never arrive, so holding their RDLocks would stall
	// reads forever.
	n.store.Range(func(r *kv.Record) bool {
		r.Lock()
		if r.Meta.RDLockOwner.Node == id {
			r.Meta.RDLockOwner = ddp.NoOwner
			r.Wake()
		}
		r.Unlock()
		return true
	})
}

// Recover brings this node's replica up to date after a restart or
// partition: it asks target (a designated live node) for the log tail
// it is missing and applies it (§III-E). Safe to call repeatedly.
func (n *Node) Recover(target ddp.NodeID) error {
	if n.closed.Load() {
		return ErrClosed
	}
	return n.tr.Send(target, transport.Frame{
		Kind:  transport.FrameRecoveryRequest,
		Since: n.log.NextSeq(),
	})
}

// serveRecovery ships the requested log tail to a recovering peer.
func (n *Node) serveRecovery(to ddp.NodeID, since uint64) {
	entries := n.log.EntriesSince(since)
	out := make([]transport.LogEntry, len(entries))
	for i, e := range entries {
		out[i] = transport.LogEntry{
			Seq: e.Seq, Key: e.Key, TS: e.TS, Value: e.Value, Scope: e.Scope,
		}
	}
	_ = n.tr.Send(to, transport.Frame{
		Kind:    transport.FrameRecoveryEntries,
		Entries: out,
	})
}

// applyRecovery installs shipped log entries: each is persisted locally
// and applied to the volatile replica unless obsolete — the same
// obsoleteness filtering the log-apply path always performs.
func (n *Node) applyRecovery(entries []transport.LogEntry) {
	applied := 0
	for _, e := range entries {
		n.log.Append(e.Key, e.TS, e.Value, e.Scope)
		r := n.store.GetOrCreate(e.Key)
		r.Lock()
		if !r.Meta.Obsolete(e.TS) && r.Meta.VolatileTS.Less(e.TS) {
			r.Value = append(r.Value[:0], e.Value...)
			r.Meta.ApplyVolatile(e.TS)
			r.Meta.AdvanceGlbVolatile(e.TS)
			r.Meta.AdvanceGlbDurable(e.TS)
			applied++
		}
		r.Wake()
		r.Unlock()
	}
	if applied > 0 {
		n.Stats.Recoveries.Add(1)
	}
}

// Alive reports the peers currently considered live (plus self).
func (n *Node) Alive() map[ddp.NodeID]bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := map[ddp.NodeID]bool{n.id: true}
	for id, a := range n.alive {
		out[id] = a
	}
	return out
}
