package node

import (
	"time"

	"github.com/minos-ddp/minos/internal/ddp"
	"github.com/minos-ddp/minos/internal/kv"
	"github.com/minos-ddp/minos/internal/transport"
)

// This file implements the §III-E extensions: timeout-based failure
// detection and log-shipping recovery for re-inserted nodes.

// heartbeatLoop beacons liveness to every peer and declares peers that
// have been silent past the failure timeout.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		// Best effort; an unreachable peer shows up as silence. One
		// broadcast encodes the beacon once for the whole cluster.
		_ = n.tr.Broadcast(transport.Frame{Kind: transport.FrameHeartbeat})
		n.heartbeats.Add(1)
		n.checkTimeouts()
	}
}

// noteAlive marks a peer as seen: an atomic timestamp store on the hot
// path (every inbound frame lands here), with a new liveness epoch
// published only when a previously failed peer speaks again. The peer
// is responsible for running Recover itself to catch up its replica.
// With the detector off nothing ever reads lastSeen and no peer can be
// failed, so the whole call (and its clock read) is skipped.
func (n *Node) noteAlive(id ddp.NodeID) {
	if !n.detecting {
		return
	}
	i, ok := n.peerIdx[id]
	if !ok {
		return
	}
	n.lastSeen[i].Store(time.Now().UnixNano())
	if !n.live.Load().alive[id] {
		n.setAlive(id, true)
	}
}

// setAlive publishes a new liveness epoch with id's status changed.
// Pending completion predicates never shrink their follower sets, so
// revival needs no wake-up; failure wake-ups happen in onPeerFailed.
func (n *Node) setAlive(id ddp.NodeID, up bool) {
	n.liveMu.Lock()
	defer n.liveMu.Unlock()
	cur := n.live.Load()
	if cur.alive[id] == up {
		return
	}
	alive := make(map[ddp.NodeID]bool, len(cur.alive))
	for k, v := range cur.alive {
		alive[k] = v
	}
	alive[id] = up
	live := make([]ddp.NodeID, 0, len(n.peers))
	for _, p := range n.peers {
		if alive[p] {
			live = append(live, p)
		}
	}
	n.live.Store(&liveView{epoch: cur.epoch + 1, alive: alive, live: live})
}

// checkTimeouts declares peers silent past FailAfter as failed.
func (n *Node) checkTimeouts() {
	now := time.Now().UnixNano()
	lv := n.live.Load()
	var failed []ddp.NodeID
	for i, p := range n.peers {
		if lv.alive[p] && now-n.lastSeen[i].Load() > int64(n.cfg.FailAfter) {
			failed = append(failed, p)
		}
	}
	for _, p := range failed {
		n.setAlive(p, false)
		n.onPeerFailed(p)
	}
}

// onPeerFailed unblocks everything that was waiting on the failed peer:
// pending write transactions stop expecting its acknowledgments, scope
// flushes stop expecting its [ACK_P]sc, and read locks owned by writes
// it coordinated are released — those writes can never validate.
func (n *Node) onPeerFailed(id ddp.NodeID) {
	n.Stats.PeersFailed.Add(1)
	pending, scopes := n.collectWaiters()

	for _, wt := range pending {
		wt.mu.Lock()
		wt.cond.Broadcast()
		wt.mu.Unlock()
	}
	for _, sp := range scopes {
		sp.mu.Lock()
		sp.cond.Broadcast()
		sp.mu.Unlock()
	}

	// Abort the failed coordinator's in-flight writes locally: their
	// VALs will never arrive, so holding their RDLocks would stall
	// reads forever.
	n.store.Range(func(r *kv.Record) bool {
		r.Lock()
		if r.Meta.RDLockOwner.Node == id {
			r.ForceReleaseRDLock()
			r.Wake()
		}
		r.Unlock()
		return true
	})
}

// Recover brings this node's replica up to date after a restart or
// partition: it asks target (a designated live node) for the log tail
// it is missing and applies it (§III-E). Safe to call repeatedly.
func (n *Node) Recover(target ddp.NodeID) error {
	if n.closed.Load() {
		return ErrClosed
	}
	return n.tr.Send(target, transport.Frame{
		Kind:  transport.FrameRecoveryRequest,
		Since: n.log.NextSeq(),
	})
}

// serveRecovery ships the requested log tail to a recovering peer.
func (n *Node) serveRecovery(to ddp.NodeID, since uint64) {
	entries := n.log.EntriesSince(since)
	out := make([]transport.LogEntry, len(entries))
	for i, e := range entries {
		out[i] = transport.LogEntry{
			Seq: e.Seq, Key: e.Key, TS: e.TS, Value: e.Value, Scope: e.Scope,
		}
	}
	_ = n.tr.Send(to, transport.Frame{
		Kind:    transport.FrameRecoveryEntries,
		Entries: out,
	})
}

// applyRecovery installs shipped log entries: each is persisted locally
// and applied to the volatile replica unless obsolete — the same
// obsoleteness filtering the log-apply path always performs. Recovery
// appends bypass the pipeline: the entries are already durable
// cluster-wide, so re-charging NVM latency would be double-counting.
func (n *Node) applyRecovery(entries []transport.LogEntry) {
	applied := 0
	for _, e := range entries {
		n.log.Append(e.Key, e.TS, e.Value, e.Scope)
		r := n.store.GetOrCreate(e.Key)
		r.Lock()
		if !r.Meta.Obsolete(e.TS) && r.Meta.VolatileTS.Less(e.TS) {
			r.Publish(e.Value, e.TS)
			r.Meta.AdvanceGlbVolatile(e.TS)
			r.Meta.AdvanceGlbDurable(e.TS)
			applied++
		}
		r.Wake()
		r.Unlock()
	}
	if applied > 0 {
		n.Stats.Recoveries.Add(1)
	}
}

// Alive reports the peers currently considered live (plus self).
func (n *Node) Alive() map[ddp.NodeID]bool {
	lv := n.live.Load()
	out := map[ddp.NodeID]bool{n.id: true}
	for id, a := range lv.alive {
		out[id] = a
	}
	return out
}
