package node

import (
	"runtime"

	"github.com/minos-ddp/minos/internal/ddp"
	"github.com/minos-ddp/minos/internal/kv"
	"github.com/minos-ddp/minos/internal/obs"
)

// Write performs a client-write: replicate value under key to every
// node per the configured DDP model (Fig 2 Coordinator). It returns once
// the model's visibility/durability conditions for a response hold. A
// write superseded by a concurrent newer write returns successfully
// after the superseding write completes (the Obsolete path).
func (n *Node) Write(key ddp.Key, value []byte) error {
	return n.writeScoped(key, value, 0)
}

// WriteScoped is Write tagging the update with scope sc (<Lin, Scope>).
func (n *Node) WriteScoped(key ddp.Key, value []byte, sc ddp.ScopeID) error {
	if !n.policy.Scoped {
		return n.Write(key, value)
	}
	return n.writeScoped(key, value, sc)
}

//minos:hotpath
func (n *Node) writeScoped(key ddp.Key, value []byte, sc ddp.ScopeID) error {
	if n.closed.Load() {
		return ErrClosed
	}
	n.Stats.Writes.Add(1)
	tc := n.startTrace(key)
	r := n.store.GetOrCreate(key)

	// The transaction-stripe mutex nests inside the record lock
	// (addPending below runs with the record held).
	//minos:lockorder kv.Record < node.txnStripe.mu
	r.Lock()
	ts := n.generateTS(r) // L4
	tc.setVer(ts.Version)
	if r.Meta.Obsolete(ts) { // L5
		n.Stats.ObsoleteWrites.Add(1)
		err := n.handleObsoleteLocked(r, ts)
		r.Unlock()
		return err
	}
	r.SnatchRDLock(ts) // L8

	for r.Meta.WRLock { // L9
		if n.closed.Load() {
			r.Unlock()
			return ErrClosed
		}
		r.Wait()
	}
	r.Meta.WRLock = true

	if r.Meta.Obsolete(ts) { // L10: final timestamp check
		r.Meta.WRLock = false // L15: release WRLock early
		r.Wake()
		n.Stats.ObsoleteWrites.Add(1)
		err := n.handleObsoleteLocked(r, ts)
		r.Unlock()
		return err
	}

	followers := n.liveFollowers()
	wt := n.getWriteTxn(key, ts, followers)
	n.addPending(key, ts, wt)
	tc.mark(obs.PhaseIssue) // timestamp issued, locks held, txn pending

	inv := ddp.Message{
		Kind: ddp.KindInv, Key: key, TS: ts, Scope: sc,
		Value: value,
		Size:  ddp.DataSize(len(value)),
	}
	if !n.syncSend {
		// The transport may retain the frame after Send returns (queued
		// in-process delivery); give it a copy it owns. Synchronous
		// encoders (TCP batcher, ring) finish with the bytes before
		// returning, so the client's buffer can be aliased directly.
		inv.Value = append([]byte(nil), value...)
	}
	// The INV fan-out runs with the record held, and every send first
	// flushes the staged VAL broadcasts; the stage mutex is a leaf (its
	// holder only encodes and broadcasts, never touching records).
	//minos:lockorder kv.Record < node.valStage.mu
	n.sendAll(followers, inv) // L11: send INVs (broadcast when all alive)
	tc.mark(obs.PhaseInvFanout)

	r.Publish(value, ts) // L12: update local volatile state (seqlocked)
	r.Meta.WRLock = false // L13
	r.Wake()
	r.Unlock()

	// Step d (L18 / Fig 3): persist the local update. The persist-enqueue
	// span covers the local apply plus the pipeline submit; only the
	// inline model also records a coordinator group-commit span, because
	// only there does the client path block for the drain.
	switch n.policy.CoordPersist {
	case ddp.CoordPersistInline:
		tc.mark(obs.PhasePersistEnqueue)
		if !n.persist(key, ts, value, sc) {
			n.removePending(key, ts)
			return ErrClosed
		}
		tc.mark(obs.PhaseGroupCommit)
	case ddp.CoordPersistBackground:
		// The pipeline copies the value and drains in the background;
		// no goroutine per write. waitLocallyDurable picks the result
		// up later via the batch wake.
		n.persistAsync(key, ts, value, sc)
		tc.mark(obs.PhasePersistEnqueue)
	case ddp.CoordPersistOnScopeFlush:
		n.bufferScope(sc, key, ts, value)
		tc.mark(obs.PhasePersistEnqueue)
	}

	// Step e: spin for consistency acknowledgments.
	if err := n.waitConsistencyFast(wt); err != nil {
		n.removePending(key, ts)
		return err
	}
	tc.mark(obs.PhaseAckWait)
	r.Lock()
	r.Meta.AdvanceGlbVolatile(ts)
	r.Wake()
	if n.policy.SendsValAtConsistency() && n.policy.Release == ddp.ReleaseWhenConsistent {
		r.ReleaseRDLockIfOwner(ts)
		r.Wake()
	}
	r.Unlock()
	if n.policy.SendsValAtConsistency() {
		// With offload enabled the NIC's broadcast FSM may have fanned
		// VAL_C out already (handleAckOffloaded, on the final ack); the
		// CAS makes exactly one of the two broadcasts happen.
		if wt.valCSent.CompareAndSwap(false, true) {
			n.sendVal(ddp.KindValC, key, ts, sc, followers)
		}
		tc.mark(obs.PhaseVal)
	}

	if n.policy.Return == ddp.ReturnWhenConsistent {
		if n.policy.TracksPersistency {
			// REnf: finish durability off the client's critical path.
			// The background half runs untraced (nil traceCtx): its spans
			// would overlap the next client write's, breaking the
			// non-interleaving invariant the trace format guarantees.
			n.wg.Add(1)
			//minos:allow hotpathalloc -- REnf spawns the durability half off the client's critical path; one goroutine per returned write is the model's cost
			go func() {
				defer n.wg.Done()
				n.finishDurable(r, wt, key, ts, sc, followers, nil)
			}()
		} else {
			n.removePending(key, ts)
		}
		tc.mark(obs.PhaseCompletion)
		return nil
	}

	// Synch / Strict: the response waits for durability everywhere.
	err := n.finishDurable(r, wt, key, ts, sc, followers, tc)
	tc.mark(obs.PhaseCompletion)
	return err
}

// finishDurable completes the durability half: wait for all persistency
// acknowledgments and the local persist, publish glb_durableTS, release
// the RDLock where the model demands, send the durable VAL, retire.
func (n *Node) finishDurable(r *kv.Record, wt *writeTxn, key ddp.Key, ts ddp.Timestamp, sc ddp.ScopeID, followers []ddp.NodeID, tc *traceCtx) error {
	defer n.removePending(key, ts)
	if err := n.waitPersistencyFast(wt); err != nil {
		return err
	}
	tc.mark(obs.PhaseAckWait) // second ack wait: the persistency spin
	if err := n.waitLocallyDurable(r, key, ts); err != nil {
		return err
	}
	tc.mark(obs.PhaseGroupCommit) // local durability point
	r.Lock()
	r.Meta.AdvanceGlbDurable(ts)
	if n.policy.Release == ddp.ReleaseWhenDurable || !n.policy.SendsValAtConsistency() {
		r.ReleaseRDLockIfOwner(ts)
	}
	r.Wake()
	r.Unlock()
	if kind, ok := n.policy.DurableValKind(); ok {
		n.sendVal(kind, key, ts, sc, followers)
		tc.mark(obs.PhaseVal)
	}
	return nil
}

func (n *Node) sendVal(kind ddp.MsgKind, key ddp.Key, ts ddp.Timestamp, sc ddp.ScopeID, followers []ddp.NodeID) {
	if n.vals != nil && len(followers) == len(n.peers) {
		// Run-to-completion mode: stage the validation; the next
		// outbound message (or the flush ticker) broadcasts it, letting
		// back-to-back commits share one encode+fan-out (valbatch.go).
		n.stageVal(kind, key, ts, sc)
		return
	}
	val := ddp.Message{Kind: kind, Key: key, TS: ts, Scope: sc, Size: ddp.ControlSize()}
	n.sendAll(followers, val)
}

// Run-to-completion ack-wait tuning: a coordinator spins this many
// rounds — each one either draining inbound frames itself (PollInline)
// or yielding the processor — before falling back to the parked wait.
// Over the ring fabric at zero persist delay the whole INV→ACK round
// trip completes within a few rounds; the parked path remains the
// fallback for slow acks and for followers that die mid-write.
const (
	rtcSpinRounds = 256
	rtcPollBudget = 32
)

// waitConsistencyFast is the run-to-completion consistency wait: spin
// on the atomic ack count, driving the transport's receive path inline
// so the acks this coordinator is waiting for are processed on its own
// goroutine. Falls back to the parked wait (which also understands
// follower death) when the spin budget runs out.
//
//minos:hotpath
func (n *Node) waitConsistencyFast(wt *writeTxn) error {
	if n.inline {
		need := int32(len(wt.followers))
		for spin := 0; spin < rtcSpinRounds; spin++ {
			if wt.ackCn.Load() >= need {
				return nil
			}
			// A spinning coordinator must not sit on staged VAL
			// releases: its peers' hot-key writes wait on them.
			n.flushVals()
			if n.poller.PollInline(rtcPollBudget) == 0 {
				runtime.Gosched()
			}
		}
	}
	return n.waitConsistency(wt)
}

// waitPersistencyFast is waitConsistencyFast for the persistency acks.
//
//minos:hotpath
func (n *Node) waitPersistencyFast(wt *writeTxn) error {
	if n.inline {
		need := int32(len(wt.followers))
		for spin := 0; spin < rtcSpinRounds; spin++ {
			if wt.ackPn.Load() >= need {
				return nil
			}
			n.flushVals()
			if n.poller.PollInline(rtcPollBudget) == 0 {
				runtime.Gosched()
			}
		}
	}
	return n.waitPersistency(wt)
}

// waitConsistency blocks until every live follower acknowledged the
// volatile update. Followers that fail mid-write stop being waited for
// when the detector declares them.
func (n *Node) waitConsistency(wt *writeTxn) error {
	// Parked waiters cannot piggyback flushes; drain the stage before
	// blocking so peers are not left waiting on our releases.
	n.flushVals()
	wt.mu.Lock()
	defer wt.mu.Unlock()
	for {
		if n.closed.Load() {
			return ErrClosed
		}
		done := true
		for _, f := range wt.followers {
			if !wt.txn.AckedC(f) && n.isAlive(f) {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		wt.cond.Wait()
	}
}

// waitPersistency blocks until every live follower acknowledged the
// persist (vacuous for models that do not track persistency).
func (n *Node) waitPersistency(wt *writeTxn) error {
	n.flushVals()
	wt.mu.Lock()
	defer wt.mu.Unlock()
	for {
		if n.closed.Load() {
			return ErrClosed
		}
		done := true
		for _, f := range wt.followers {
			if !wt.txn.AckedP(f) && n.isAlive(f) {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		wt.cond.Wait()
	}
}

// waitLocallyDurable blocks until the local log holds ts (the local
// persist may run in the background under REnf).
func (n *Node) waitLocallyDurable(r *kv.Record, key ddp.Key, ts ddp.Timestamp) error {
	// The durability predicate reads the log shard index under the
	// record lock; shard mutexes are leaves of the write path.
	//minos:lockorder kv.Record < nvm.logShard.mu
	r.Lock()
	defer r.Unlock()
	for !n.log.LocallyDurable(key, ts) {
		if n.closed.Load() {
			return ErrClosed
		}
		r.Wait()
	}
	return nil
}

// handleObsoleteLocked is the paper's handleObsolete(): spin until the
// superseding write completes consistency-wise (and persistency-wise for
// the conservative models). The caller holds the record lock. If this
// write's snatch won the lock against an already-finished superseder,
// release it (liveness: nobody else will).
func (n *Node) handleObsoleteLocked(r *kv.Record, ts ddp.Timestamp) error {
	obs := r.Meta.VolatileTS
	for !r.Meta.ConsistencyDone(obs) {
		if n.closed.Load() {
			return ErrClosed
		}
		r.Wait()
	}
	if n.policy.PersistencySpinOnObsolete {
		for !r.Meta.PersistencyDone(obs) {
			if n.closed.Load() {
				return ErrClosed
			}
			r.Wait()
		}
	}
	if r.ReleaseRDLockIfOwner(ts) {
		r.Wake()
	}
	return nil
}

// Read performs a client-read (§III-D): always local, stalled only
// while the record's RDLock is held by an in-flight write. It returns a
// copy of the value (nil if the key has never been written).
func (n *Node) Read(key ddp.Key) ([]byte, error) {
	return n.ReadInto(key, nil)
}

// ReadInto is Read with a caller-supplied buffer: the value is copied
// into buf (reusing its capacity, growing it only when too small) and
// the filled slice returned, so a client that recycles its buffer reads
// without allocating. The steady-state path is the record's seqlock —
// no mutex, no condvar, one wait-free store lookup; the mutex+condvar
// wait remains the fallback whenever the record's RDLock is held by an
// in-flight write (the §III-D read stall) or a publication keeps
// racing the copy.
//
//minos:hotpath
func (n *Node) ReadInto(key ddp.Key, buf []byte) ([]byte, error) {
	if n.closed.Load() {
		return nil, ErrClosed
	}
	n.Stats.Reads.Add(1)
	r := n.store.Get(key)
	if r == nil {
		// Never written or preloaded anywhere: nothing to stall on.
		return nil, nil
	}
	if v, ok := r.ReadInto(buf); ok {
		return v, nil
	}
	return n.readSlow(r, buf)
}

// readSlow is the read fallback: take the record mutex and wait out the
// RDLock exactly as the pre-seqlock read path did.
func (n *Node) readSlow(r *kv.Record, buf []byte) ([]byte, error) {
	r.Lock()
	defer r.Unlock()
	for r.Meta.RDLocked() {
		if n.closed.Load() {
			return nil, ErrClosed
		}
		r.Wait()
	}
	if r.Value == nil {
		return nil, nil
	}
	return append(buf[:0], r.Value...), nil
}
