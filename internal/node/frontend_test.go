package node

import (
	"bytes"
	"testing"
	"time"

	"github.com/minos-ddp/minos/internal/ddp"
	"github.com/minos-ddp/minos/internal/transport"
)

// newClientCluster builds an n-node cluster with the client frontend
// enabled plus one client endpoint wired to every node.
func newClientCluster(t *testing.T, n int, model ddp.Model, mutate func(*Config)) ([]*Node, *transport.MemTransport) {
	t.Helper()
	net := transport.NewMemNetworkClients(n, 1)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		cfg := Config{Model: model, ClientWindow: 256, ClientWorkers: 4}
		if mutate != nil {
			mutate(&cfg)
		}
		nodes[i] = New(cfg, net.Endpoint(ddp.NodeID(i)))
		nodes[i].Start()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes, net.Endpoint(ddp.NodeID(n))
}

// call issues one client op and waits for its response.
func call(t *testing.T, ep *transport.MemTransport, to ddp.NodeID, client uint64, req transport.ClientRequest) transport.ClientResponse {
	t.Helper()
	if err := ep.Send(to, transport.Frame{Kind: transport.FrameClientRequest, Client: client, Req: req}); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-ep.Recv():
		if f.Kind != transport.FrameClientResponse || f.Client != client {
			t.Fatalf("unexpected frame %+v", f)
		}
		return f.Resp
	case <-time.After(5 * time.Second):
		t.Fatalf("no response for client %d", client)
		return transport.ClientResponse{}
	}
}

func TestClientFrontendWriteReadPersist(t *testing.T) {
	for _, model := range []ddp.Model{ddp.LinSynch, ddp.LinScope} {
		t.Run(model.String(), func(t *testing.T) {
			nodes, client := newClientCluster(t, 3, model, nil)

			w := call(t, client, 0, 7, transport.ClientRequest{
				Op: transport.OpClientWrite, Key: 42, Value: []byte("hello"),
			})
			if w.Status != transport.StatusOK {
				t.Fatalf("write status = %v", w.Status)
			}
			p := call(t, client, 0, 7, transport.ClientRequest{Op: transport.OpClientPersist})
			if p.Status != transport.StatusOK {
				t.Fatalf("persist status = %v", p.Status)
			}
			r := call(t, client, 0, 7, transport.ClientRequest{Op: transport.OpClientRead, Key: 42})
			if r.Status != transport.StatusOK || !bytes.Equal(r.Value, []byte("hello")) {
				t.Fatalf("read = %+v", r)
			}
			// The write replicated: a different node serves it too.
			waitConverged(t, nodes, 42, []byte("hello"))
			r2 := call(t, client, 1, 8, transport.ClientRequest{Op: transport.OpClientRead, Key: 42})
			if r2.Status != transport.StatusOK || !bytes.Equal(r2.Value, []byte("hello")) {
				t.Fatalf("read from node 1 = %+v", r2)
			}
		})
	}
}

// TestClientFrontendSheds pins the admission contract: a full window
// answers StatusShed immediately instead of queueing unboundedly, and
// every admitted request is still answered — offered equals responses.
func TestClientFrontendSheds(t *testing.T) {
	_, client := newClientCluster(t, 3, ddp.LinSynch, func(c *Config) {
		c.ClientWindow = 2
		c.ClientWorkers = 1
		c.PersistDelay = 2 * time.Millisecond
	})

	const offered = 64
	for i := 0; i < offered; i++ {
		if err := client.Send(0, transport.Frame{
			Kind:   transport.FrameClientRequest,
			Client: uint64(i),
			Req:    transport.ClientRequest{Op: transport.OpClientWrite, Key: ddp.Key(i), Value: []byte("v")},
		}); err != nil {
			t.Fatal(err)
		}
	}
	var ok, shed int
	for got := 0; got < offered; got++ {
		select {
		case f := <-client.Recv():
			switch f.Resp.Status {
			case transport.StatusOK:
				ok++
			case transport.StatusShed:
				shed++
			default:
				t.Fatalf("unexpected status in %+v", f)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("responses stalled at %d/%d (ok=%d shed=%d)", got, offered, ok, shed)
		}
	}
	if shed == 0 {
		t.Fatal("window 2 with 64 burst writes shed nothing")
	}
	if ok+shed != offered {
		t.Fatalf("ok=%d shed=%d, want sum %d", ok, shed, offered)
	}
}

// TestClientFrontendOverRingRTC drives client ops through the
// run-to-completion ring path — the configuration where executing a
// client op inline (instead of enqueueing) would deadlock on the poll
// token. Fifty round trips complete or the test times out.
func TestClientFrontendOverRingRTC(t *testing.T) {
	const nodes = 3
	net := transport.NewRingNetworkClients(nodes, 1, 256<<10, 0)
	cluster := make([]*Node, nodes)
	for i := 0; i < nodes; i++ {
		cluster[i] = New(Config{
			Model: ddp.LinSynch, RTC: RTCEnabled, ClientWindow: 64, ClientWorkers: 2,
		}, net.Endpoint(ddp.NodeID(i)))
		cluster[i].Start()
	}
	defer func() {
		for _, nd := range cluster {
			nd.Close()
		}
	}()
	client := net.Endpoint(ddp.NodeID(nodes))
	defer client.Close()

	for i := 0; i < 50; i++ {
		to := ddp.NodeID(i % nodes)
		w := callRing(t, client, to, uint64(i), transport.ClientRequest{
			Op: transport.OpClientWrite, Key: ddp.Key(i % 5), Value: []byte("rv"),
		})
		if w.Status != transport.StatusOK {
			t.Fatalf("write %d status = %v", i, w.Status)
		}
	}
	r := callRing(t, client, 1, 99, transport.ClientRequest{Op: transport.OpClientRead, Key: 3})
	if r.Status != transport.StatusOK || !bytes.Equal(r.Value, []byte("rv")) {
		t.Fatalf("read = %+v", r)
	}
}

func callRing(t *testing.T, ep *transport.RingTransport, to ddp.NodeID, client uint64, req transport.ClientRequest) transport.ClientResponse {
	t.Helper()
	if err := ep.Send(to, transport.Frame{Kind: transport.FrameClientRequest, Client: client, Req: req}); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-ep.Recv():
		if f.Kind != transport.FrameClientResponse || f.Client != client {
			t.Fatalf("unexpected frame %+v", f)
		}
		return f.Resp
	case <-time.After(10 * time.Second):
		t.Fatalf("no response for client %d", client)
		return transport.ClientResponse{}
	}
}

// TestClientFrontendDisabledErrs: a node without a frontend answers
// StatusErr so remote clients fail fast rather than hang.
func TestClientFrontendDisabledErrs(t *testing.T) {
	_, client := newClientCluster(t, 2, ddp.LinSynch, func(c *Config) {
		c.ClientWindow = 0
	})
	resp := call(t, client, 0, 1, transport.ClientRequest{Op: transport.OpClientRead, Key: 1})
	if resp.Status != transport.StatusErr {
		t.Fatalf("status = %v, want StatusErr", resp.Status)
	}
}
