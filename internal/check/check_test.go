package check

import (
	"testing"

	"github.com/minos-ddp/minos/internal/ddp"
)

// TestTableISingleWriter checks every model with one writer on 3 nodes:
// the base protocol round trip.
func TestTableISingleWriter(t *testing.T) {
	for _, model := range ddp.Models {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			res := Run(Config{Model: model, Nodes: 3, Writers: []ddp.NodeID{0}})
			if !res.OK() {
				t.Fatalf("%v\nviolations:\n%v", res, res.Violations)
			}
			if res.States < 10 {
				t.Fatalf("suspiciously small state space: %d", res.States)
			}
			if res.Terminals == 0 {
				t.Fatal("no terminal state")
			}
		})
	}
}

// TestTableIConcurrentWriters checks every model with two concurrent
// writers on distinct nodes — the configuration that exercises lock
// snatching, obsolete writes, and the spin primitives.
func TestTableIConcurrentWriters(t *testing.T) {
	for _, model := range ddp.Models {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			res := Run(Config{Model: model, Nodes: 3, Writers: []ddp.NodeID{0, 1}})
			if !res.OK() {
				t.Fatalf("%v\nviolations:\n%v", res, res.Violations)
			}
			t.Logf("%v", res)
		})
	}
}

// TestTableISameNodeWriters checks two concurrent writes issued by the
// same coordinator (the unique-TS_WR rule).
func TestTableISameNodeWriters(t *testing.T) {
	for _, model := range []ddp.Model{ddp.LinSynch, ddp.LinStrict, ddp.LinEvent} {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			t.Parallel()
			res := Run(Config{Model: model, Nodes: 3, Writers: []ddp.NodeID{0, 0}})
			if !res.OK() {
				t.Fatalf("%v\nviolations:\n%v", res, res.Violations)
			}
		})
	}
}

// TestTableITwoNodes checks the minimal cluster.
func TestTableITwoNodes(t *testing.T) {
	for _, model := range ddp.Models {
		res := Run(Config{Model: model, Nodes: 2, Writers: []ddp.NodeID{0, 1}})
		if !res.OK() {
			t.Fatalf("%v\nviolations:\n%v", res, res.Violations)
		}
	}
}

// TestCheckerDetectsInjectedBug mutates the policy table's semantics by
// simulating a protocol with a broken release rule and verifies the
// checker notices. This guards the checker itself: a checker that can
// never fail verifies nothing.
func TestCheckerDetectsInjectedBug(t *testing.T) {
	c := &checker{
		cfg:    Config{Model: ddp.LinSynch, Nodes: 2, Writers: []ddp.NodeID{0}},
		policy: ddp.PolicyFor(ddp.LinSynch),
		nw:     1,
		nn:     2,
	}
	// Construct a corrupt state: a write fully acked for consistency
	// but with a replica left behind (2b must fire).
	var s state
	for n := 0; n < 2; n++ {
		s.meta[n] = ddp.NewMeta()
		s.dur[n] = ddp.NoOwner
	}
	s.w[0].ts = ddp.Timestamp{Node: 0, Version: 1}
	s.w[0].invsSent = true
	s.w[0].ackC = 1 << 1
	s.w[0].ackP = 1 << 1
	// Node 0 (coordinator) applied; node 1 claims an ACK but never
	// applied: volatileTS[1] is still zero.
	s.meta[0].ApplyVolatile(s.w[0].ts)

	fired := false
	c.checkInvariants(s, func(cond string, _ state) {
		if cond[:2] == "2b" {
			fired = true
		}
	})
	if !fired {
		t.Fatal("checker failed to flag a replica left behind after full consistency acks")
	}
}

// TestCheckerDetectsLockLeak verifies the terminal check catches a held
// RDLock.
func TestCheckerDetectsLockLeak(t *testing.T) {
	c := &checker{
		cfg:    Config{Model: ddp.LinSynch, Nodes: 2, Writers: []ddp.NodeID{0}},
		policy: ddp.PolicyFor(ddp.LinSynch),
		nw:     1,
		nn:     2,
	}
	var s state
	for n := 0; n < 2; n++ {
		s.meta[n] = ddp.NewMeta()
		s.dur[n] = ddp.NoOwner
	}
	ts := ddp.Timestamp{Node: 0, Version: 1}
	s.w[0].ts = ts
	s.w[0].invsSent = true
	for n := 0; n < 2; n++ {
		s.meta[n].ApplyVolatile(ts)
		s.meta[n].AdvanceGlbVolatile(ts)
		s.meta[n].AdvanceGlbDurable(ts)
		s.dur[n] = ts
	}
	s.meta[1].SnatchRDLock(ts) // leaked lock

	fired := false
	c.checkTerminal(s, func(cond string, _ state) { fired = true })
	if !fired {
		t.Fatal("terminal check missed a leaked RDLock")
	}
}

func TestResultString(t *testing.T) {
	res := Run(Config{Model: ddp.LinSynch, Nodes: 2, Writers: []ddp.NodeID{0}})
	if s := res.String(); s == "" {
		t.Fatal("empty result string")
	}
	if !res.OK() {
		t.Fatalf("trivial configuration failed: %v", res.Violations)
	}
}
