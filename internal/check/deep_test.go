package check

import (
	"testing"

	"github.com/minos-ddp/minos/internal/ddp"
)

// TestTableIThreeWriters explores three concurrent writes — two from
// node 0 and one from node 1 — the deepest configuration that still
// fits comfortably in memory. Skipped with -short.
func TestTableIThreeWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("three-writer exploration is large; skipped with -short")
	}
	// Only Synch fits a reasonable budget with three writers: its
	// combined ACKs halve the message interleavings. The separate-ack
	// models exceed 5M states at this depth; their two-writer spaces
	// (up to ~100K states) are covered by the default tests.
	res := Run(Config{
		Model:     ddp.LinSynch,
		Nodes:     3,
		Writers:   []ddp.NodeID{0, 0, 1},
		MaxStates: 5_000_000,
	})
	if !res.OK() {
		t.Fatalf("%v\nviolations:\n%v", res, res.Violations)
	}
	t.Logf("%v", res)
}

// TestTableIAllWritersDistinct: one write from every node — maximum
// coordinator symmetry.
func TestTableIAllWritersDistinct(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped with -short")
	}
	res := Run(Config{
		Model:     ddp.LinSynch,
		Nodes:     3,
		Writers:   []ddp.NodeID{0, 1, 2},
		MaxStates: 5_000_000,
	})
	if !res.OK() {
		t.Fatalf("%v\nviolations:\n%v", res, res.Violations)
	}
	t.Logf("%v", res)
}

// TestStateCanonicalMessages: the in-flight message multiset must have a
// canonical representation or the visited-set dedup breaks.
func TestStateCanonicalMessages(t *testing.T) {
	var a, b state
	m1 := msg{kind: ddp.KindAck, from: 1, to: 0, w: 0}
	m2 := msg{kind: ddp.KindInv, from: 0, to: 2, w: 1}
	a.addMsg(m1)
	a.addMsg(m2)
	b.addMsg(m2)
	b.addMsg(m1)
	if a != b {
		t.Fatal("insertion order leaked into state identity")
	}
	a.delMsg(0)
	if a.nmsg != 1 {
		t.Fatalf("delMsg broke count: %d", a.nmsg)
	}
}

// TestDeliverConsumesMessage: every delivery removes exactly one
// message.
func TestDeliverConsumesMessage(t *testing.T) {
	c := &checker{
		cfg:    Config{Model: ddp.LinSynch, Nodes: 2, Writers: []ddp.NodeID{0}},
		policy: ddp.PolicyFor(ddp.LinSynch),
		nw:     1, nn: 2,
	}
	var s state
	for n := 0; n < 2; n++ {
		s.meta[n] = ddp.NewMeta()
		s.dur[n] = ddp.NoOwner
	}
	s.w[0].ts = ddp.Timestamp{Node: 0, Version: 1}
	s.addMsg(msg{kind: ddp.KindAck, from: 1, to: 0, w: 0})
	count := 0
	c.deliver(s, 0, func(ns state) {
		count++
		if ns.nmsg != 0 {
			t.Errorf("message not consumed: %d left", ns.nmsg)
		}
		if ns.w[0].ackC == 0 || ns.w[0].ackP == 0 {
			t.Error("combined ACK must set both planes")
		}
	})
	if count != 1 {
		t.Fatalf("deliver emitted %d states, want 1", count)
	}
}
