// Package check is an explicit-state model checker for the MINOS write
// protocol: the Go counterpart of the paper's TLA+/TLC verification
// (§VI, Table I). It enumerates, breadth-first, every interleaving of a
// bounded cluster (up to 3 nodes, one record, up to 3 concurrent
// client-writes) executing the Fig 2/3 algorithms under a chosen
// <consistency, persistency> model, and checks the Table I conditions in
// every reachable state.
//
// The protocol semantics (timestamps, lock snatching, obsoleteness,
// policy deltas) are the same internal/ddp definitions the simulator and
// the live node consume, so a violation found here is a violation of the
// shipped protocol, not of a re-transcription.
//
// Invariant interpretation. Two Table I conditions are stated over
// per-write message counts; timestamps are unique per write, so we check
// them in their precise safety form:
//
//   - 2c/3b ("when not all ACKs received, glb_*TS is the same across
//     nodes"): a write's visibility (durability) is never published —
//     no node's glb_volatileTS (glb_durableTS) equals the write's TS —
//     before all its consistency (persistency) ACKs are in.
//   - 3a is checked at lock-free states for models whose durability
//     publication precedes every lock release (Synch, REnf), and at
//     quiescent states for Strict, whose VAL_P intentionally trails the
//     VAL_C that releases the lock.
//
// Beyond Table I, the checker verifies the defining read-enforcement
// property for REnf (and Synch, whose combined ACKs imply it): whenever
// a record is readable anywhere, the version a read would return is
// already durable on every node.
package check

import (
	"fmt"
	"sort"

	"github.com/minos-ddp/minos/internal/ddp"
)

// Bounds of the explored model.
const (
	maxNodes  = 3
	maxWrites = 3
	maxMsgs   = 24
)

// Config selects what to check.
type Config struct {
	// Model is the <consistency, persistency> model.
	Model ddp.Model
	// Nodes is the cluster size (2 or 3).
	Nodes int
	// Writers lists the coordinator of each concurrent client-write to
	// the single modeled record. len(Writers) <= 3.
	Writers []ddp.NodeID
	// MaxStates aborts exploration beyond this many states (0 = 2M).
	MaxStates int
}

// phase is a coordinator's position in the Fig 2 algorithm.
type phase uint8

const (
	cInit     phase = iota // not started
	cSnatched              // TS generated, RDLock snatched (L4-8)
	cObsSpinC              // obsolete: ConsistencySpin
	cObsSpinP              // obsolete: PersistencySpin
	cWaitAckC              // INVs sent, LLC updated, awaiting ACK_Cs (L19)
	cWaitAckP              // consistency done, awaiting ACK_Ps
	cDone                  // transaction complete at the coordinator
)

// fphase is a follower's position for one write.
type fphase uint8

const (
	fIdle     fphase = iota // INV not yet processed
	fSnatched               // obsolete check passed, RDLock snatched (L31)
	fApplied                // LLC updated, acks pending per policy
	fAckedC                 // ACK_C sent, persist pending (Strict/REnf)
	fObsSpinC               // obsolete path: ConsistencySpin
	fObsSpinP               // obsolete path: PersistencySpin
	fWaitVal                // acks sent, awaiting the releasing VAL
	fWaitValP               // Strict: VAL_C seen, awaiting VAL_P
	fDone
)

// msg is one in-flight protocol message. The single record is implicit.
type msg struct {
	kind ddp.MsgKind
	from ddp.NodeID
	to   ddp.NodeID
	w    int8 // write index
}

// wstate is one client-write's global progress.
type wstate struct {
	phase phase
	ts    ddp.Timestamp
	// obs is the volatileTS snapshot taken when the write went obsolete
	// (spin target).
	obs ddp.Timestamp
	// ackC/ackP are bitmasks of followers that acknowledged.
	ackC, ackP uint8
	// fol and fobs track each node's follower handler for this write.
	fol  [maxNodes]fphase
	fobs [maxNodes]ddp.Timestamp
	// bgLeft marks nodes with a pending deferred persist of this write
	// (drives Event/Scope eventual persistence).
	bgLeft uint8
	// invsSent records that the coordinator reached the INV-sending
	// step; a write cut short as obsolete never involves followers.
	invsSent bool
	// valCSeen / valPSeen are bitmasks of nodes that already consumed
	// this write's releasing VAL / VAL_P. The real follower has no
	// "waiting for VAL" control state — VAL handling is an independent
	// handler — so the model's completion bookkeeping must accept VALs
	// that arrive while the follower is still persisting.
	valCSeen uint8
	valPSeen uint8
}

// state is a full model state. All fields are comparable, so state
// itself keys the visited set.
type state struct {
	meta [maxNodes]ddp.Meta
	// dur is each node's newest locally durable timestamp (log head).
	dur  [maxNodes]ddp.Timestamp
	w    [maxWrites]wstate
	msgs [maxMsgs]msg
	nmsg uint8
}

// addMsg inserts m keeping msgs canonically sorted (multiset identity).
func (s *state) addMsg(m msg) {
	if int(s.nmsg) >= maxMsgs {
		panic("check: message bound exceeded; raise maxMsgs")
	}
	i := int(s.nmsg)
	s.msgs[i] = m
	s.nmsg++
	sub := s.msgs[:s.nmsg]
	sort.Slice(sub, func(a, b int) bool { return msgLess(sub[a], sub[b]) })
}

// delMsg removes the message at index i.
func (s *state) delMsg(i int) {
	copy(s.msgs[i:], s.msgs[i+1:s.nmsg])
	s.nmsg--
	s.msgs[s.nmsg] = msg{}
}

func msgLess(a, b msg) bool {
	if a.w != b.w {
		return a.w < b.w
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.from != b.from {
		return a.from < b.from
	}
	return a.to < b.to
}

func (s *state) String() string {
	out := ""
	for n := 0; n < maxNodes; n++ {
		m := s.meta[n]
		if m == (ddp.Meta{}) && n > 0 {
			continue
		}
		out += fmt.Sprintf("n%d{own=%v vol=%v gV=%v gD=%v dur=%v} ",
			n, m.RDLockOwner, m.VolatileTS, m.GlbVolatileTS, m.GlbDurableTS, s.dur[n])
	}
	for i := range s.w {
		if s.w[i].ts != (ddp.Timestamp{}) || s.w[i].phase != cInit {
			out += fmt.Sprintf("w%d{ph=%d ts=%v ackC=%b ackP=%b fol=%v} ",
				i, s.w[i].phase, s.w[i].ts, s.w[i].ackC, s.w[i].ackP, s.w[i].fol)
		}
	}
	for i := 0; i < int(s.nmsg); i++ {
		m := s.msgs[i]
		out += fmt.Sprintf("[%v w%d %d->%d] ", m.kind, m.w, m.from, m.to)
	}
	return out
}
