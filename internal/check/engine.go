package check

import (
	"fmt"

	"github.com/minos-ddp/minos/internal/ddp"
)

// Violation is one failed Table I condition, with the offending state.
type Violation struct {
	Condition string
	State     string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s\n  in state: %s", v.Condition, v.State)
}

// Result summarizes one model-checking run.
type Result struct {
	Model      ddp.Model
	Nodes      int
	Writers    []ddp.NodeID
	States     int
	Terminals  int
	Violations []Violation
	// Aborted is set if exploration hit MaxStates.
	Aborted bool
}

// OK reports whether every condition held over the explored space.
func (r Result) OK() bool { return len(r.Violations) == 0 && !r.Aborted }

func (r Result) String() string {
	status := "PASS"
	if !r.OK() {
		status = fmt.Sprintf("FAIL (%d violations, aborted=%v)", len(r.Violations), r.Aborted)
	}
	return fmt.Sprintf("%v nodes=%d writers=%v: %d states, %d terminal — %s",
		r.Model, r.Nodes, r.Writers, r.States, r.Terminals, status)
}

// Run explores every reachable state of the configured bounded cluster
// and checks the Table I conditions.
func Run(cfg Config) Result {
	if cfg.Nodes < 2 || cfg.Nodes > maxNodes {
		panic("check: Nodes must be 2 or 3")
	}
	if len(cfg.Writers) == 0 || len(cfg.Writers) > maxWrites {
		panic("check: need 1..3 writers")
	}
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 2_000_000
	}
	c := &checker{
		cfg:    cfg,
		policy: ddp.PolicyFor(cfg.Model),
		nw:     len(cfg.Writers),
		nn:     cfg.Nodes,
	}
	res := Result{Model: cfg.Model, Nodes: cfg.Nodes, Writers: cfg.Writers}

	var init state
	for n := 0; n < cfg.Nodes; n++ {
		init.meta[n] = ddp.NewMeta()
		init.dur[n] = ddp.NoOwner // nothing durable yet
	}
	type edge struct{ from, to int }
	idx := map[state]int{init: 0}
	states := []state{init}
	var edges []edge
	queue := []int{0}
	violated := map[string]bool{}

	report := func(cond string, s state) {
		if violated[cond] {
			return // one witness per condition is enough
		}
		violated[cond] = true
		res.Violations = append(res.Violations, Violation{Condition: cond, State: s.String()})
	}

	for len(queue) > 0 {
		si := queue[0]
		queue = queue[1:]
		s := states[si]
		c.checkInvariants(s, report)

		succCount := 0
		c.allSucc(s, func(ns state) {
			succCount++
			ti, ok := idx[ns]
			if !ok {
				if len(states) >= cfg.MaxStates {
					res.Aborted = true
					return
				}
				ti = len(states)
				idx[ns] = ti
				states = append(states, ns)
				queue = append(queue, ti)
			}
			edges = append(edges, edge{si, ti})
		})
		if succCount == 0 {
			if c.terminal(s) {
				res.Terminals++
				c.checkTerminal(s, report)
			} else {
				report("1. deadlock: non-terminal state with no enabled action", s)
			}
		}
		if res.Aborted {
			break
		}
	}
	res.States = len(states)

	// Livelock / stuck-cycle check: every state must be able to reach a
	// terminal state (TLC's "no livelock" via temporal properties; here
	// via backward reachability over the full, finite graph).
	if !res.Aborted && res.Terminals > 0 {
		rev := make([][]int, len(states))
		for _, e := range edges {
			rev[e.to] = append(rev[e.to], e.from)
		}
		coreach := make([]bool, len(states))
		var stack []int
		for i, s := range states {
			if c.terminal(s) {
				coreach[i] = true
				stack = append(stack, i)
			}
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range rev[v] {
				if !coreach[u] {
					coreach[u] = true
					stack = append(stack, u)
				}
			}
		}
		for i, ok := range coreach {
			if !ok {
				report("1. livelock: state cannot reach any terminal state", states[i])
				break
			}
		}
	} else if !res.Aborted && res.Terminals == 0 {
		report("1. no terminal state reachable at all", init)
	}
	return res
}

// allSucc wires the three transition families together.
func (c *checker) allSucc(s state, emit func(state)) {
	c.succ(s, emit)
	for wi := 0; wi < c.nw; wi++ {
		for n := 0; n < c.nn; n++ {
			if ddp.NodeID(n) != c.cfg.Writers[wi] {
				c.followerSteps(s, wi, n, emit)
			}
		}
	}
}

// terminal reports whether every write has fully completed everywhere
// and no messages or deferred persists remain.
func (c *checker) terminal(s state) bool {
	if s.nmsg != 0 {
		return false
	}
	for wi := 0; wi < c.nw; wi++ {
		w := s.w[wi]
		if w.phase != cDone || w.bgLeft != 0 {
			return false
		}
		for n := 0; n < c.nn; n++ {
			if ddp.NodeID(n) == c.cfg.Writers[wi] {
				continue
			}
			if w.invsSent {
				if w.fol[n] != fDone {
					return false
				}
			} else if w.fol[n] != fIdle {
				return false
			}
		}
	}
	return true
}
