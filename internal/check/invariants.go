package check

import (
	"fmt"

	"github.com/minos-ddp/minos/internal/ddp"
)

// legalKinds returns the message vocabulary a model may put on the wire
// (Table I type check 4a, restricted to the write path — [PERSIST]sc
// transactions are exercised by the runtime tests).
func (c *checker) legalKinds() map[ddp.MsgKind]bool {
	switch c.policy.Model {
	case ddp.LinSynch:
		return map[ddp.MsgKind]bool{ddp.KindInv: true, ddp.KindAck: true, ddp.KindVal: true}
	case ddp.LinStrict:
		return map[ddp.MsgKind]bool{
			ddp.KindInv: true, ddp.KindAckC: true, ddp.KindAckP: true,
			ddp.KindValC: true, ddp.KindValP: true,
		}
	case ddp.LinREnf:
		return map[ddp.MsgKind]bool{
			ddp.KindInv: true, ddp.KindAckC: true, ddp.KindAckP: true, ddp.KindVal: true,
		}
	default: // Event, Scope write path
		return map[ddp.MsgKind]bool{ddp.KindInv: true, ddp.KindAckC: true, ddp.KindValC: true}
	}
}

// checkInvariants verifies the Table I conditions that must hold in
// every reachable state.
func (c *checker) checkInvariants(s state, report func(string, state)) {
	c.typeChecks(s, report)

	// 2a: when the record is read-unlocked in all nodes, volatileTS and
	// glb_volatileTS agree across all nodes.
	lockFree := true
	for n := 0; n < c.nn; n++ {
		if s.meta[n].RDLocked() {
			lockFree = false
			break
		}
	}
	if lockFree {
		ref := s.meta[0]
		for n := 0; n < c.nn; n++ {
			m := s.meta[n]
			if m.VolatileTS != ref.VolatileTS {
				report("2a. lock-free state with diverged volatileTS", s)
			}
			if m.GlbVolatileTS != m.VolatileTS {
				report("2a. lock-free state where glb_volatileTS lags volatileTS", s)
			}
		}
		// 3a: glb_durableTS agrees across nodes at lock-free states for
		// models whose durability publication precedes lock release.
		if c.policy.ValAfterDurable || !c.policy.TracksPersistency {
			for n := 1; n < c.nn; n++ {
				if s.meta[n].GlbDurableTS != s.meta[0].GlbDurableTS {
					report("3a. lock-free state with diverged glb_durableTS", s)
				}
			}
		}
	}

	// Read-enforcement (the defining REnf property, §II; Synch's
	// combined ACKs imply it too): whenever a record is readable (its
	// RDLock is free) at any node, the version a read would return is
	// already durable on every node. Strict deliberately releases on
	// VAL_C before durability, and Event/Scope make no such promise.
	if c.policy.Model == ddp.LinREnf || c.policy.Model == ddp.LinSynch {
		for n := 0; n < c.nn; n++ {
			if s.meta[n].RDLocked() {
				continue
			}
			v := s.meta[n].VolatileTS
			if v == (ddp.Timestamp{}) {
				continue // initial version predates the run
			}
			for m := 0; m < c.nn; m++ {
				if s.dur[m].Less(v) {
					report("RE. readable version not durable everywhere (read-enforcement)", s)
				}
			}
		}
	}

	for wi := 0; wi < c.nw; wi++ {
		w := s.w[wi]
		if !w.invsSent {
			continue
		}
		coord := int(c.cfg.Writers[wi])
		allC := c.allAcked(w.ackC, coord)
		allP := c.allAcked(w.ackP, coord)

		// 2b: all consistency ACKs received => every replica's volatile
		// version is at least this write's.
		if allC {
			for n := 0; n < c.nn; n++ {
				if s.meta[n].VolatileTS.Less(w.ts) {
					report("2b. write fully acked (consistency) but a replica is behind", s)
				}
			}
		}
		// 2c: visibility is never published before all consistency ACKs.
		if !allC {
			for n := 0; n < c.nn; n++ {
				if s.meta[n].GlbVolatileTS == w.ts {
					report("2c. glb_volatileTS published before all consistency ACKs", s)
				}
			}
		}
		// 3b: durability is never published before all persistency ACKs.
		if c.policy.TracksPersistency && !allP {
			for n := 0; n < c.nn; n++ {
				if s.meta[n].GlbDurableTS == w.ts {
					report("3b. glb_durableTS published before all persistency ACKs", s)
				}
			}
		}
		// Soundness of durability publication: a node believing the
		// write durable implies it is locally durable on every node
		// that acknowledged persistency.
		if c.policy.TracksPersistency {
			published := false
			for n := 0; n < c.nn; n++ {
				if !s.meta[n].GlbDurableTS.Less(w.ts) && s.meta[n].GlbDurableTS == w.ts {
					published = true
				}
			}
			if published {
				for n := 0; n < c.nn; n++ {
					if s.dur[n].Less(w.ts) {
						report("3+. durability published while a replica's log lacks the write", s)
					}
				}
			}
		}
	}
}

// typeChecks enforces Table I check 4: legal message kinds, legal
// metadata values, legal bookkeeping.
func (c *checker) typeChecks(s state, report func(string, state)) {
	legal := c.legalKinds()
	for i := 0; i < int(s.nmsg); i++ {
		m := s.msgs[i]
		if !m.kind.Valid() || !legal[m.kind] {
			report(fmt.Sprintf("4a. illegal message kind %v for %v", m.kind, c.policy.Model), s)
		}
		if int(m.from) >= c.nn || int(m.to) >= c.nn || m.from == m.to {
			report("4a. message with illegal endpoints", s)
		}
	}
	maxVer := ddp.Version(c.nw + 1)
	for n := 0; n < c.nn; n++ {
		m := s.meta[n]
		for _, ts := range []ddp.Timestamp{m.VolatileTS, m.GlbVolatileTS, m.GlbDurableTS} {
			if ts.Version < 0 || ts.Version > maxVer || int(ts.Node) >= c.nn || ts.Node < 0 {
				report("4b-i. record timestamp out of range", s)
			}
		}
		own := m.RDLockOwner
		if own != ddp.NoOwner && (own.Version < 1 || own.Version > maxVer || int(own.Node) >= c.nn || own.Node < 0) {
			report("4b-ii. RDLock_Owner out of range", s)
		}
	}
	for wi := 0; wi < c.nw; wi++ {
		w := s.w[wi]
		coord := uint8(1) << uint(c.cfg.Writers[wi])
		if w.ackC&coord != 0 || w.ackP&coord != 0 {
			report("4c. bookkeeping records an ACK from the coordinator itself", s)
		}
		if w.ackC>>uint(c.nn) != 0 || w.ackP>>uint(c.nn) != 0 {
			report("4c. bookkeeping records an ACK from a nonexistent node", s)
		}
	}
}

// checkTerminal verifies the quiescent-state conditions: convergence,
// lock freedom, published visibility, and durability of the newest
// version on every node.
func (c *checker) checkTerminal(s state, report func(string, state)) {
	newest := ddp.Timestamp{}
	for wi := 0; wi < c.nw; wi++ {
		if s.w[wi].invsSent {
			newest = ddp.Max(newest, s.w[wi].ts)
		}
	}
	for n := 0; n < c.nn; n++ {
		m := s.meta[n]
		if m.RDLocked() {
			report("T. terminal state with a held RDLock", s)
		}
		if m.VolatileTS != newest {
			report("T. terminal state where a replica missed the newest write", s)
		}
		if m.GlbVolatileTS != newest {
			report("T. terminal state where visibility was not fully published", s)
		}
		if newest != (ddp.Timestamp{}) && s.dur[n].Less(newest) {
			report("T. terminal state where the newest write is not durable everywhere", s)
		}
		if c.policy.TracksPersistency && m.GlbDurableTS != newest {
			report("3a/T. terminal state with diverged glb_durableTS", s)
		}
	}
}
