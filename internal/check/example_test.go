package check_test

import (
	"fmt"

	"github.com/minos-ddp/minos/internal/check"
	"github.com/minos-ddp/minos/internal/ddp"
)

// Example verifies <Lin, Synch> with two concurrent writers on a
// 3-node cluster — the configuration that exercises lock snatching and
// the obsolete-write paths.
func Example() {
	res := check.Run(check.Config{
		Model:   ddp.LinSynch,
		Nodes:   3,
		Writers: []ddp.NodeID{0, 1},
	})
	fmt.Println("ok:", res.OK(), "violations:", len(res.Violations))
	// Output: ok: true violations: 0
}
