package check

import (
	"github.com/minos-ddp/minos/internal/ddp"
)

// checker holds the exploration context.
type checker struct {
	cfg    Config
	policy ddp.Policy
	nw     int // number of writes
	nn     int // number of nodes
}

// succ enumerates every successor of s by applying each enabled atomic
// action. Actions mirror the Fig 2/3 algorithm steps; guards mirror the
// spins.
func (c *checker) succ(s state, emit func(state)) {
	for wi := 0; wi < c.nw; wi++ {
		c.coordSteps(s, wi, emit)
	}
	// Message deliveries: any in-flight message may be processed next.
	for i := 0; i < int(s.nmsg); i++ {
		c.deliver(s, i, emit)
	}
	// Deferred/background persists (Event/Scope models and REnf's
	// background coordinator persist) may complete at any time.
	for wi := 0; wi < c.nw; wi++ {
		w := &s.w[wi]
		if w.bgLeft == 0 {
			continue
		}
		for n := 0; n < c.nn; n++ {
			if w.bgLeft&(1<<n) != 0 {
				ns := s
				ns.w[wi].bgLeft &^= 1 << n
				ns.dur[n] = ddp.Max(ns.dur[n], s.w[wi].ts)
				emit(ns)
			}
		}
	}
}

// coordSteps emits the coordinator actions enabled for write wi.
func (c *checker) coordSteps(s state, wi int, emit func(state)) {
	w := s.w[wi]
	coord := int(c.cfg.Writers[wi])
	meta := s.meta[coord]

	switch w.phase {
	case cInit:
		// L4-8: generate TS_WR, obsoleteness check, snatch RDLock.
		ns := s
		ts := ddp.Timestamp{Node: ddp.NodeID(coord), Version: meta.VolatileTS.Version + 1}
		// Unique-TS rule: bump past other writes this node issued.
		for oi := 0; oi < c.nw; oi++ {
			if oi != wi && c.cfg.Writers[oi] == ddp.NodeID(coord) &&
				s.w[oi].ts.Node == ddp.NodeID(coord) && s.w[oi].ts.Version >= ts.Version {
				ts.Version = s.w[oi].ts.Version + 1
			}
		}
		ns.w[wi].ts = ts
		if meta.Obsolete(ts) {
			ns.w[wi].obs = meta.VolatileTS
			ns.w[wi].phase = cObsSpinC
		} else {
			ns.meta[coord].SnatchRDLock(ts)
			ns.w[wi].phase = cSnatched
		}
		emit(ns)

	case cSnatched:
		// L10-18: final check; update LLC, send INVs, persist per policy.
		ns := s
		if meta.Obsolete(w.ts) {
			ns.w[wi].obs = meta.VolatileTS
			ns.w[wi].phase = cObsSpinC
			emit(ns)
			return
		}
		ns.meta[coord].ApplyVolatile(w.ts)
		for n := 0; n < c.nn; n++ {
			if n != coord {
				ns.addMsg(msg{kind: ddp.KindInv, from: ddp.NodeID(coord), to: ddp.NodeID(n), w: int8(wi)})
			}
		}
		switch c.policy.CoordPersist {
		case ddp.CoordPersistInline:
			ns.dur[coord] = ddp.Max(ns.dur[coord], w.ts)
		case ddp.CoordPersistBackground, ddp.CoordPersistOnScopeFlush:
			// Deferred: completes via a bgLeft action. Scope's flush is
			// abstracted as an eventual persist for the write path.
			ns.w[wi].bgLeft |= 1 << coord
		}
		ns.w[wi].phase = cWaitAckC
		ns.w[wi].invsSent = true
		emit(ns)

	case cObsSpinC:
		// ConsistencySpin: wait until the superseding write is visible.
		if meta.ConsistencyDone(w.obs) {
			ns := s
			if c.policy.PersistencySpinOnObsolete {
				ns.w[wi].phase = cObsSpinP
			} else {
				ns.meta[coord].ReleaseRDLockIfOwner(w.ts)
				ns.w[wi].phase = cDone
			}
			emit(ns)
		}

	case cObsSpinP:
		if meta.PersistencyDone(w.obs) {
			ns := s
			ns.meta[coord].ReleaseRDLockIfOwner(w.ts)
			ns.w[wi].phase = cDone
			emit(ns)
		}

	case cWaitAckC:
		// L19+: all consistency acks in?
		if !c.allAcked(w.ackC, coord) {
			return
		}
		ns := s
		ns.meta[coord].AdvanceGlbVolatile(w.ts)
		if c.policy.SendsValAtConsistency() {
			if c.policy.Release == ddp.ReleaseWhenConsistent {
				ns.meta[coord].ReleaseRDLockIfOwner(w.ts)
			}
			for n := 0; n < c.nn; n++ {
				if n != coord {
					ns.addMsg(msg{kind: ddp.KindValC, from: ddp.NodeID(coord), to: ddp.NodeID(n), w: int8(wi)})
				}
			}
		}
		if c.policy.TracksPersistency {
			ns.w[wi].phase = cWaitAckP
		} else {
			ns.w[wi].phase = cDone
		}
		emit(ns)

	case cWaitAckP:
		// Durability half: all persistency acks plus local durability.
		if !c.allAcked(w.ackP, coord) || s.dur[coord].Less(w.ts) {
			return
		}
		ns := s
		ns.meta[coord].AdvanceGlbDurable(w.ts)
		if c.policy.Release == ddp.ReleaseWhenDurable || !c.policy.SendsValAtConsistency() {
			ns.meta[coord].ReleaseRDLockIfOwner(w.ts)
		}
		if kind, ok := c.policy.DurableValKind(); ok {
			for n := 0; n < c.nn; n++ {
				if n != coord {
					ns.addMsg(msg{kind: kind, from: ddp.NodeID(coord), to: ddp.NodeID(n), w: int8(wi)})
				}
			}
		}
		ns.w[wi].phase = cDone
		emit(ns)
	}
}

// allAcked reports whether every follower of coord has its bit set.
func (c *checker) allAcked(mask uint8, coord int) bool {
	for n := 0; n < c.nn; n++ {
		if n != coord && mask&(1<<n) == 0 {
			return false
		}
	}
	return true
}

// deliver processes in-flight message i.
func (c *checker) deliver(s state, i int, emit func(state)) {
	m := s.msgs[i]
	wi := int(m.w)
	w := s.w[wi]
	to := int(m.to)

	switch m.kind {
	case ddp.KindInv:
		c.deliverInv(s, i, wi, to, emit)

	case ddp.KindAck:
		ns := s
		ns.delMsg(i)
		ns.w[wi].ackC |= 1 << m.from
		ns.w[wi].ackP |= 1 << m.from
		emit(ns)

	case ddp.KindAckC:
		ns := s
		ns.delMsg(i)
		ns.w[wi].ackC |= 1 << m.from
		emit(ns)

	case ddp.KindAckP:
		ns := s
		ns.delMsg(i)
		ns.w[wi].ackP |= 1 << m.from
		emit(ns)

	case ddp.KindVal, ddp.KindValC:
		ns := s
		ns.delMsg(i)
		meta := &ns.meta[to]
		if m.kind == c.policy.FollowerReleaseKind {
			meta.AdvanceGlbVolatile(w.ts)
			if m.kind == ddp.KindVal && c.policy.ValAfterDurable {
				meta.AdvanceGlbDurable(w.ts)
			}
			meta.ReleaseRDLockIfOwner(w.ts)
			ns.w[wi].valCSeen |= 1 << to
			c.resolveFol(&ns, wi, to)
		}
		emit(ns)

	case ddp.KindValP:
		ns := s
		ns.delMsg(i)
		ns.meta[to].AdvanceGlbDurable(w.ts)
		ns.w[wi].valPSeen |= 1 << to
		c.resolveFol(&ns, wi, to)
		emit(ns)
	}
}

// deliverInv starts follower processing (Fig 2 L26-31). The INV message
// is consumed; subsequent follower steps run as coordFollower actions.
func (c *checker) deliverInv(s state, i, wi, to int, emit func(state)) {
	ns := s
	ns.delMsg(i)
	meta := &ns.meta[to]
	w := s.w[wi]
	if meta.Obsolete(w.ts) { // L27
		ns.w[wi].fobs[to] = meta.VolatileTS
		ns.w[wi].fol[to] = fObsSpinC
	} else {
		meta.SnatchRDLock(w.ts) // L31
		ns.w[wi].fol[to] = fSnatched
	}
	emit(ns)
}

// followerSteps emits follower-local actions (apply, persist, acks,
// obsolete spins) for write wi at node n.
func (c *checker) followerSteps(s state, wi, n int, emit func(state)) {
	w := s.w[wi]
	coord := ddp.NodeID(c.cfg.Writers[wi])
	meta := s.meta[n]
	ackTo := coord

	switch w.fol[n] {
	case fSnatched:
		// L33-38: re-check, update LLC or take the obsolete path.
		ns := s
		if meta.Obsolete(w.ts) {
			ns.w[wi].fobs[n] = meta.VolatileTS
			ns.w[wi].fol[n] = fObsSpinC
			emit(ns)
			return
		}
		ns.meta[n].ApplyVolatile(w.ts)
		switch c.policy.FollowerPersist {
		case ddp.PersistBeforeAck: // Synch: persist then combined ACK
			ns.dur[n] = ddp.Max(ns.dur[n], w.ts)
			ns.addMsg(msg{kind: ddp.KindAck, from: ddp.NodeID(n), to: ackTo, w: int8(wi)})
			ns.w[wi].fol[n] = fWaitVal
		case ddp.PersistAfterAckC: // Strict, REnf
			ns.addMsg(msg{kind: ddp.KindAckC, from: ddp.NodeID(n), to: ackTo, w: int8(wi)})
			ns.w[wi].fol[n] = fAckedC
		case ddp.PersistBackground, ddp.PersistOnScopeFlush:
			ns.addMsg(msg{kind: ddp.KindAckC, from: ddp.NodeID(n), to: ackTo, w: int8(wi)})
			ns.w[wi].bgLeft |= 1 << n
			ns.w[wi].fol[n] = fWaitVal
		}
		emit(ns)

	case fAckedC:
		// Strict/REnf: persist, then ACK_P. The releasing VAL_C may
		// already have been consumed while persisting.
		ns := s
		ns.dur[n] = ddp.Max(ns.dur[n], w.ts)
		ns.addMsg(msg{kind: ddp.KindAckP, from: ddp.NodeID(n), to: ackTo, w: int8(wi)})
		ns.w[wi].fol[n] = fWaitVal
		c.resolveFol(&ns, wi, n)
		emit(ns)

	case fObsSpinC:
		// Obsolete path (L27-30): ConsistencySpin, then acknowledge.
		if !meta.ConsistencyDone(w.fobs[n]) {
			return
		}
		ns := s
		ns.meta[n].ReleaseRDLockIfOwner(w.ts) // liveness guard
		if !c.policy.SeparateAcks {
			// Synch: PersistencySpin precedes the combined ACK.
			ns.w[wi].fol[n] = fObsSpinP
			emit(ns)
			return
		}
		ns.addMsg(msg{kind: ddp.KindAckC, from: ddp.NodeID(n), to: ackTo, w: int8(wi)})
		if c.policy.PersistencySpinOnObsolete && c.policy.TracksPersistency {
			ns.w[wi].fol[n] = fObsSpinP
		} else {
			ns.w[wi].fol[n] = fDone
		}
		emit(ns)

	case fObsSpinP:
		if !meta.PersistencyDone(w.fobs[n]) {
			return
		}
		ns := s
		if !c.policy.SeparateAcks {
			ns.addMsg(msg{kind: ddp.KindAck, from: ddp.NodeID(n), to: ackTo, w: int8(wi)})
		} else {
			ns.addMsg(msg{kind: ddp.KindAckP, from: ddp.NodeID(n), to: ackTo, w: int8(wi)})
		}
		ns.w[wi].fol[n] = fDone
		emit(ns)
	}
}

// resolveFol advances a follower's completion bookkeeping against the
// VALs it has already consumed.
func (c *checker) resolveFol(s *state, wi, n int) {
	w := &s.w[wi]
	if w.fol[n] == fWaitVal && w.valCSeen&(1<<n) != 0 {
		if c.policy.Model == ddp.LinStrict && w.valPSeen&(1<<n) == 0 {
			w.fol[n] = fWaitValP
		} else {
			w.fol[n] = fDone
		}
	}
	if w.fol[n] == fWaitValP && w.valPSeen&(1<<n) != 0 {
		w.fol[n] = fDone
	}
}
