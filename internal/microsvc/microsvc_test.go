package microsvc

import "testing"

func TestFunctionShapes(t *testing.T) {
	social := SocialNetworkLogin()
	if social.App != "SocialNetwork" || social.Name != "Login" {
		t.Fatalf("bad identity: %v", social)
	}
	if social.Sets() == 0 || social.Gets() == 0 {
		t.Fatal("Social Login must mix GETs and SETs")
	}
	media := MediaLogin()
	if media.Sets() >= social.Sets() {
		t.Error("Media Login should be the slimmer flow (fewer SETs)")
	}
	if got := social.Sets() + social.Gets(); got != len(social.Ops) {
		t.Errorf("op accounting broken: %d+%d != %d", social.Sets(), social.Gets(), len(social.Ops))
	}
}

func TestFunctionsOrder(t *testing.T) {
	fs := Functions()
	if len(fs) != 2 || fs[0].App != "SocialNetwork" || fs[1].App != "Media" {
		t.Fatalf("Functions() = %v, want Social then Media (paper order)", fs)
	}
}

func TestStringer(t *testing.T) {
	s := SocialNetworkLogin().String()
	if s == "" || s[:13] != "SocialNetwork" {
		t.Errorf("unhelpful String(): %q", s)
	}
	if Get.String() != "GET" || Set.String() != "SET" {
		t.Error("OpType names wrong")
	}
}
