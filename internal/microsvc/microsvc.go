// Package microsvc models the paper's real-application study (§VIII-C):
// the Login function of the UserService microservice from the DeathStar
// benchmark suite's Social Network and Media Microservices applications.
//
// The paper maps each SET and GET the function performs onto the
// client-write and client-read algorithms, assumes a 500 µs round-trip
// to the service, and models a 16-node cluster. DeathStarBench itself is
// a large C++/Thrift deployment we cannot run here; following the
// substitution rule, each Login is expressed as its storage-operation
// trace against MINOS-KV, which is the only part of the benchmark the
// paper's experiment exercises.
package microsvc

import "fmt"

// OpType is a storage operation within a microservice function.
type OpType int

const (
	// Get maps to a MINOS client-read.
	Get OpType = iota
	// Set maps to a MINOS client-write.
	Set
)

func (o OpType) String() string {
	if o == Get {
		return "GET"
	}
	return "SET"
}

// Op is one storage access of a function, labeled with the state it
// touches for documentation and key assignment.
type Op struct {
	Type OpType
	What string
}

// Function is a microservice entry point expressed as its storage trace.
type Function struct {
	Name string
	App  string
	Ops  []Op
}

// Sets returns the number of SET (client-write) operations.
func (f Function) Sets() int { return f.count(Set) }

// Gets returns the number of GET (client-read) operations.
func (f Function) Gets() int { return f.count(Get) }

func (f Function) count(t OpType) int {
	n := 0
	for _, op := range f.Ops {
		if op.Type == t {
			n++
		}
	}
	return n
}

func (f Function) String() string {
	return fmt.Sprintf("%s/%s (%d GET, %d SET)", f.App, f.Name, f.Gets(), f.Sets())
}

// SocialNetworkLogin is the UserService Login of the Social Network
// application: resolve the username, load and verify credentials, then
// establish the session state (token, login timestamp, device entry,
// and counters kept by the social graph front end).
func SocialNetworkLogin() Function {
	return Function{
		Name: "Login",
		App:  "SocialNetwork",
		Ops: []Op{
			{Get, "user-id by username"},
			{Get, "credentials (salted password hash)"},
			{Get, "account status / lockout state"},
			{Get, "user profile for session bootstrap"},
			{Set, "session token"},
			{Set, "last-login timestamp"},
			{Set, "active-device entry"},
			{Set, "login counter"},
			{Get, "home-timeline cache warmup marker"},
		},
	}
}

// MediaLogin is the UserService Login of the Media Microservices
// application: a slimmer flow with no social-graph bookkeeping.
func MediaLogin() Function {
	return Function{
		Name: "Login",
		App:  "Media",
		Ops: []Op{
			{Get, "user-id by username"},
			{Get, "credentials (salted password hash)"},
			{Get, "subscription / plan record"},
			{Set, "session token"},
			{Set, "last-login timestamp"},
			{Set, "watch-state session entry"},
		},
	}
}

// Functions returns the functions evaluated in Fig 11, in paper order.
func Functions() []Function {
	return []Function{SocialNetworkLogin(), MediaLogin()}
}
